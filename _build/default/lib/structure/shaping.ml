module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types
module Rect = Dpp_geom.Rect
module Hypergraph = Dpp_netlist.Hypergraph
module Pins = Dpp_wirelen.Pins
module Hpwl = Dpp_wirelen.Hpwl

type placed = { dgroup : Dgroup.t; origin_x : float; origin_y : float; rect : Rect.t }

let src = Logs.Src.create "dpp.shaping" ~doc:"group snapping"

module Log = (val Logs.src_log src : Logs.LOG)

let round_to ~step ~origin v = origin +. (Float.round ((v -. origin) /. step) *. step)

let fixed_rects (d : Design.t) =
  Array.to_list (Design.fixed_ids d)
  |> List.filter_map (fun i ->
         match (Design.cell d i).Types.c_kind with
         | Types.Fixed -> Rect.intersection (Design.cell_rect d i) d.Design.die
         | Types.Pad | Types.Movable -> None)

let collides rect obstacles = List.exists (Rect.overlaps rect) obstacles

let clamp_origin (d : Design.t) (dg : Dgroup.t) ox oy =
  let die = d.Design.die in
  let ox = max die.Rect.xl (min (die.Rect.xh -. dg.Dgroup.width) ox) in
  let oy = max die.Rect.yl (min (die.Rect.yh -. dg.Dgroup.height) oy) in
  let ox = round_to ~step:d.Design.site_width ~origin:die.Rect.xl ox in
  let oy = round_to ~step:d.Design.row_height ~origin:die.Rect.yl oy in
  let ox = if ox +. dg.Dgroup.width > die.Rect.xh then ox -. d.Design.site_width else ox in
  let oy = if oy +. dg.Dgroup.height > die.Rect.yh then oy -. d.Design.row_height else oy in
  max die.Rect.xl ox, max die.Rect.yl oy

let group_rect (dg : Dgroup.t) ox oy =
  Rect.make ~xl:ox ~yl:oy ~xh:(ox +. dg.Dgroup.width) ~yh:(oy +. dg.Dgroup.height)

(* HPWL of the nets incident to the group's members at the current
   coordinates. *)
let incident_nets h (dg : Dgroup.t) =
  let seen = Hashtbl.create 256 in
  Array.iter
    (fun c -> Hypergraph.iter_nets_of_cell h c (fun n -> Hashtbl.replace seen n ()))
    dg.Dgroup.cells;
  Hashtbl.fold (fun n () acc -> n :: acc) seen []

let place_members (dg : Dgroup.t) ox oy ~cx ~cy =
  Array.iteri
    (fun i c ->
      cx.(c) <- ox +. dg.Dgroup.off_x.(i);
      cy.(c) <- oy +. dg.Dgroup.off_y.(i))
    dg.Dgroup.cells

(* Candidate origins: the clamped least-squares origin plus an outward
   spiral on the (site*8, row) lattice. *)
let candidates (d : Design.t) (dg : Dgroup.t) ox oy obstacles ~max_radius ~max_count =
  let die = d.Design.die in
  let xstep = 8.0 *. d.Design.site_width in
  let ystep = d.Design.row_height in
  let feasible ox oy =
    if
      ox >= die.Rect.xl -. 1e-9
      && oy >= die.Rect.yl -. 1e-9
      && ox +. dg.Dgroup.width <= die.Rect.xh +. 1e-9
      && oy +. dg.Dgroup.height <= die.Rect.yh +. 1e-9
    then begin
      let r = group_rect dg ox oy in
      if collides r obstacles then None else Some (ox, oy)
    end
    else None
  in
  let found = ref [] in
  let count = ref 0 in
  let radius = ref 0 in
  while !count < max_count && !radius <= max_radius do
    let r = !radius in
    let ring =
      if r = 0 then [ 0, 0 ]
      else begin
        let acc = ref [] in
        for i = -r to r do
          for j = -r to r do
            if max (abs i) (abs j) = r then acc := (i, j) :: !acc
          done
        done;
        List.rev !acc
      end
    in
    List.iter
      (fun (i, j) ->
        if !count < max_count then
          match feasible (ox +. (float_of_int i *. xstep)) (oy +. (float_of_int j *. ystep)) with
          | Some p ->
            found := p :: !found;
            incr count
          | None -> ())
      ring;
    incr radius
  done;
  List.rev !found

let snap ?(max_die_fraction = 0.25) ?(extra_obstacles = []) (d : Design.t) dgs ~cx ~cy =
  let die_area = Rect.area d.Design.die in
  let fixed = extra_obstacles @ fixed_rects d in
  let pins = Pins.build d in
  let h = Hypergraph.build d in
  let order =
    List.sort
      (fun a b -> compare (Array.length b.Dgroup.cells) (Array.length a.Dgroup.cells))
      dgs
  in
  let placed = ref [] in
  List.iter
    (fun dg ->
      let footprint = dg.Dgroup.width *. dg.Dgroup.height in
      if footprint > max_die_fraction *. die_area then
        Log.info (fun m ->
            m "group %s footprint %.0f exceeds %.0f%% of the die; left soft"
              dg.Dgroup.group.Dpp_netlist.Groups.g_name footprint (100.0 *. max_die_fraction))
      else begin
        let ox, oy = Dgroup.origin_of_positions dg ~cx ~cy in
        let ox, oy = clamp_origin d dg ox oy in
        let obstacles = fixed @ List.map (fun p -> p.rect) !placed in
        let cands = candidates d dg ox oy obstacles ~max_radius:12 ~max_count:48 in
        let nets = incident_nets h dg in
        let eval () = List.fold_left (fun acc n -> acc +. Hpwl.net pins ~cx ~cy n) 0.0 nets in
        (* save member positions once; trial each candidate in place *)
        let saved =
          Array.map (fun c -> cx.(c), cy.(c)) dg.Dgroup.cells
        in
        let restore () =
          Array.iteri
            (fun i c ->
              let x, y = saved.(i) in
              cx.(c) <- x;
              cy.(c) <- y)
            dg.Dgroup.cells
        in
        let best = ref None in
        List.iter
          (fun (cox, coy) ->
            place_members dg cox coy ~cx ~cy;
            let cost = eval () in
            (match !best with
            | Some (bc, _, _) when bc <= cost -> ()
            | Some _ | None -> best := Some (cost, cox, coy));
            restore ())
          cands;
        let ox, oy =
          match !best with
          | Some (_, bx, by) -> bx, by
          | None ->
            Log.warn (fun m ->
                m "no overlap-free spot for group %s; leaving it clamped"
                  dg.Dgroup.group.Dpp_netlist.Groups.g_name);
            ox, oy
        in
        (* commit member positions now so later groups' candidate scoring
           sees this group where it will actually be *)
        place_members dg ox oy ~cx ~cy;
        placed :=
          { dgroup = dg; origin_x = ox; origin_y = oy; rect = group_rect dg ox oy } :: !placed
      end)
    order;
  List.rev !placed

let apply p ~cx ~cy = place_members p.dgroup p.origin_x p.origin_y ~cx ~cy

let obstacles placed = List.map (fun p -> p.rect) placed
