module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types
module Groups = Dpp_netlist.Groups
module Rect = Dpp_geom.Rect

type t = {
  group : Groups.t;
  cells : int array;
  off_x : float array;
  off_y : float array;
  width : float;
  height : float;
}

let build ?stage_order ?slice_order ?fold (d : Design.t) g =
  let slices = Groups.num_slices g and stages = Groups.num_stages g in
  let stage_order = Option.value stage_order ~default:(Array.init stages Fun.id) in
  let slice_order = Option.value slice_order ~default:(Array.init slices Fun.id) in
  (* column widths, indexed by array column (i.e. after reordering) *)
  let col_w = Array.make stages 0.0 in
  for s = 0 to slices - 1 do
    for k = 0 to stages - 1 do
      let c = g.Groups.g_rows.(s).(k) in
      if c >= 0 then begin
        let col = stage_order.(k) in
        col_w.(col) <- max col_w.(col) (Design.cell d c).Types.c_width
      end
    done
  done;
  let spacing = d.Design.site_width in
  (* stages pack tight: an airy array wastes row capacity and starves the
     legalizer around it *)
  let col_x = Array.make stages 0.0 in
  let cursor = ref 0.0 in
  for col = 0 to stages - 1 do
    col_x.(col) <- !cursor;
    cursor := !cursor +. col_w.(col)
  done;
  let block_w = max spacing !cursor in
  (* Folding: tall thin arrays (many slices, few stages) become walls that
     wreck the surrounding placement, so wide datapaths are folded into
     [fold] column blocks of ceil(slices/fold) rows each, serpentine so a
     carry chain crossing the fold stays on adjacent rows.  The default
     fold balances the footprint's aspect ratio. *)
  let fold =
    match fold with
    | Some f -> max 1 f
    | None ->
      let h1 = float_of_int slices *. d.Design.row_height in
      let f = int_of_float (Float.round (sqrt (h1 /. max 1.0 block_w))) in
      (* cap the folded height at ~a third of the die so one array cannot
         wall off the floorplan, and cap the width at ~90% of the die so
         wide merged groups still fit *)
      let rows_cap =
        max 2 (int_of_float (0.35 *. Rect.height d.Design.die /. d.Design.row_height))
      in
      let f_min = (slices + rows_cap - 1) / rows_cap in
      let f_max_width =
        let pitch = block_w +. (2.0 *. spacing) in
        max 1 (int_of_float (floor ((0.9 *. Rect.width d.Design.die) /. pitch)))
      in
      max 1 (min (min (max f f_min) f_max_width) (max 1 (slices / 2)))
  in
  let rows = (slices + fold - 1) / fold in
  let block_pitch = block_w +. (2.0 *. spacing) in
  let width = (float_of_int fold *. block_pitch) -. (2.0 *. spacing) in
  let height = float_of_int rows *. d.Design.row_height in
  let row_of_slot slot =
    let b = slot / rows in
    let r = slot mod rows in
    if b mod 2 = 0 then r else rows - 1 - r
  in
  let cells = ref [] and offs = ref [] in
  for s = 0 to slices - 1 do
    for k = 0 to stages - 1 do
      let c = g.Groups.g_rows.(s).(k) in
      if c >= 0 then begin
        let cell = Design.cell d c in
        let slot = slice_order.(s) in
        let b = slot / rows in
        let row = row_of_slot slot in
        let ox =
          (float_of_int b *. block_pitch)
          +. col_x.(stage_order.(k))
          +. (cell.Types.c_width /. 2.0)
        in
        let oy = (float_of_int row *. d.Design.row_height) +. (cell.Types.c_height /. 2.0) in
        cells := c :: !cells;
        offs := (ox, oy) :: !offs
      end
    done
  done;
  let cells = Array.of_list (List.rev !cells) in
  if Array.length cells = 0 then invalid_arg "Dgroup.build: empty group";
  let offs = Array.of_list (List.rev !offs) in
  {
    group = g;
    cells;
    off_x = Array.map fst offs;
    off_y = Array.map snd offs;
    width;
    height;
  }

let internal_coupling (d : Design.t) g =
  let members = Groups.member_set g in
  let intra = ref 0 and boundary = ref 0 in
  Array.iter
    (fun (net : Types.net) ->
      let inside = ref 0 and outside = ref 0 in
      Array.iter
        (fun p ->
          let c = (Design.pin d p).Types.p_cell in
          if Hashtbl.mem members c then incr inside else incr outside)
        net.Types.n_pins;
      if !inside > 0 then
        if !outside = 0 then intra := !intra + !inside else boundary := !boundary + !inside)
    d.Design.nets;
  float_of_int !intra /. float_of_int (max 1 (!intra + !boundary))

let slice_span (d : Design.t) g =
  let slice_of = Hashtbl.create 256 in
  Array.iteri
    (fun s row -> Array.iter (fun c -> if c >= 0 then Hashtbl.replace slice_of c s) row)
    g.Groups.g_rows;
  let total = ref 0.0 and count = ref 0 in
  Array.iter
    (fun (net : Types.net) ->
      let smin = ref max_int and smax = ref min_int and outside = ref false in
      Array.iter
        (fun p ->
          let c = (Design.pin d p).Types.p_cell in
          match Hashtbl.find_opt slice_of c with
          | Some s ->
            if s < !smin then smin := s;
            if s > !smax then smax := s
          | None -> outside := true)
        net.Types.n_pins;
      if (not !outside) && !smax > min_int && !smin < max_int then begin
        total := !total +. float_of_int (!smax - !smin);
        incr count
      end)
    d.Design.nets;
  if !count = 0 then 0.0 else !total /. float_of_int !count

let of_movable_macro (d : Design.t) i =
  let c = Design.cell d i in
  if Types.is_fixed_kind c.Types.c_kind then invalid_arg "Dgroup.of_movable_macro: fixed cell";
  {
    group = Groups.make c.Types.c_name [| [| i |] |];
    cells = [| i |];
    off_x = [| c.Types.c_width /. 2.0 |];
    off_y = [| c.Types.c_height /. 2.0 |];
    width = c.Types.c_width;
    height = c.Types.c_height;
  }

let movable_macros (d : Design.t) =
  Array.to_list (Design.movable_ids d)
  |> List.filter (fun i ->
         (Design.cell d i).Types.c_height > d.Design.row_height +. 1e-9)

let src = Logs.Src.create "dpp.structure" ~doc:"datapath structure handling"

module Log = (val Logs.src_log src : Logs.LOG)

let fits (d : Design.t) g dg =
  let die = d.Design.die in
  if dg.width > Rect.width die || dg.height > Rect.height die then begin
    Log.warn (fun m ->
        m "group %s (%.0fx%.0f) larger than the die; dropping its alignment"
          g.Groups.g_name dg.width dg.height);
    false
  end
  else true

let build_all (d : Design.t) groups =
  List.filter_map
    (fun g ->
      let dg = build d g in
      if fits d g dg then Some dg else None)
    groups

(* Greedy chain ordering: repeatedly attach, at either end of the path, the
   unplaced node most strongly connected to that end.  [w] is a symmetric
   dense weight matrix.  Returns a permutation: order.(node) = position. *)
let chain_order w n =
  if n = 1 then [| 0 |]
  else begin
    let placed = Array.make n false in
    (* start at the node with the largest total weight (a hub of the
       dataflow), ties to the lowest index for determinism *)
    let total k = Array.fold_left ( +. ) 0.0 w.(k) in
    let start = ref 0 in
    for k = 1 to n - 1 do
      if total k > total !start then start := k
    done;
    placed.(!start) <- true;
    let path = ref [ !start ] in
    (* path kept as list, head = left end; we track both ends *)
    for _ = 2 to n do
      let head = List.hd !path in
      let tail = List.nth !path (List.length !path - 1) in
      let best = ref None in
      for k = 0 to n - 1 do
        if not placed.(k) then begin
          let wh = w.(head).(k) and wt = w.(tail).(k) in
          let cand = if wh >= wt then wh, `Head, k else wt, `Tail, k in
          match !best, cand with
          | None, _ -> best := Some cand
          | Some (bw, _, _), (cw, _, _) when cw > bw -> best := Some cand
          | Some _, _ -> ()
        end
      done;
      match !best with
      | Some (_, `Head, k) ->
        placed.(k) <- true;
        path := k :: !path
      | Some (_, `Tail, k) ->
        placed.(k) <- true;
        path := !path @ [ k ]
      | None -> ()
    done;
    let order = Array.make n 0 in
    List.iteri (fun pos k -> order.(k) <- pos) !path;
    order
  end

(* Pearson sign between chain position and the mean coordinate: a negative
   correlation means the chain runs against the initial placement (and
   against any bus-connected neighbour group), so flip it. *)
let orient order means n =
  let fpos = Array.init n (fun k -> float_of_int order.(k)) in
  if Dpp_util.Statx.pearson fpos means < 0.0 then
    Array.map (fun p -> n - 1 - p) order
  else order

(* Inter-column / inter-row connection weights from the nets touching the
   group; each net contributes 1/(k-1) per pair to keep big nets gentle. *)
let connection_weights (d : Design.t) g =
  let slices = Groups.num_slices g and stages = Groups.num_stages g in
  let stage_of = Hashtbl.create 64 and slice_of = Hashtbl.create 64 in
  for s = 0 to slices - 1 do
    for k = 0 to stages - 1 do
      let c = g.Groups.g_rows.(s).(k) in
      if c >= 0 then begin
        Hashtbl.replace stage_of c k;
        Hashtbl.replace slice_of c s
      end
    done
  done;
  let w_stage = Array.make_matrix stages stages 0.0 in
  let w_slice = Array.make_matrix slices slices 0.0 in
  Array.iter
    (fun (net : Types.net) ->
      let members =
        Array.to_list net.Types.n_pins
        |> List.filter_map (fun p ->
               let c = (Design.pin d p).Types.p_cell in
               match Hashtbl.find_opt stage_of c, Hashtbl.find_opt slice_of c with
               | Some k, Some s -> Some (c, k, s)
               | _, _ -> None)
        |> List.sort_uniq compare
      in
      let m = List.length members in
      if m >= 2 then begin
        let inc = 1.0 /. float_of_int (m - 1) in
        List.iter
          (fun (c1, k1, s1) ->
            List.iter
              (fun (c2, k2, s2) ->
                if c1 < c2 then begin
                  if k1 <> k2 then begin
                    w_stage.(k1).(k2) <- w_stage.(k1).(k2) +. inc;
                    w_stage.(k2).(k1) <- w_stage.(k2).(k1) +. inc
                  end;
                  if s1 <> s2 then begin
                    w_slice.(s1).(s2) <- w_slice.(s1).(s2) +. inc;
                    w_slice.(s2).(s1) <- w_slice.(s2).(s1) +. inc
                  end
                end)
              members)
          members
      end)
    d.Design.nets;
  w_stage, w_slice

let axis_means g ~cx ~cy =
  let slices = Groups.num_slices g and stages = Groups.num_stages g in
  let stage_mean = Array.make stages 0.0 and stage_n = Array.make stages 0 in
  let slice_mean = Array.make slices 0.0 and slice_n = Array.make slices 0 in
  for s = 0 to slices - 1 do
    for k = 0 to stages - 1 do
      let c = g.Groups.g_rows.(s).(k) in
      if c >= 0 then begin
        stage_mean.(k) <- stage_mean.(k) +. cx.(c);
        stage_n.(k) <- stage_n.(k) + 1;
        slice_mean.(s) <- slice_mean.(s) +. cy.(c);
        slice_n.(s) <- slice_n.(s) + 1
      end
    done
  done;
  for k = 0 to stages - 1 do
    if stage_n.(k) > 0 then stage_mean.(k) <- stage_mean.(k) /. float_of_int stage_n.(k)
  done;
  for s = 0 to slices - 1 do
    if slice_n.(s) > 0 then slice_mean.(s) <- slice_mean.(s) /. float_of_int slice_n.(s)
  done;
  stage_mean, slice_mean

let build_all_ordered (d : Design.t) groups ~cx ~cy =
  List.filter_map
    (fun g ->
      let slices = Groups.num_slices g and stages = Groups.num_stages g in
      let w_stage, w_slice = connection_weights d g in
      let stage_mean, slice_mean = axis_means g ~cx ~cy in
      let stage_order = orient (chain_order w_stage stages) stage_mean stages in
      let slice_order = orient (chain_order w_slice slices) slice_mean slices in
      let dg = build ~stage_order ~slice_order d g in
      if fits d g dg then Some dg else None)
    groups

let origin_of_positions t ~cx ~cy =
  let n = Array.length t.cells in
  let sx = ref 0.0 and sy = ref 0.0 in
  for i = 0 to n - 1 do
    let c = t.cells.(i) in
    sx := !sx +. (cx.(c) -. t.off_x.(i));
    sy := !sy +. (cy.(c) -. t.off_y.(i))
  done;
  !sx /. float_of_int n, !sy /. float_of_int n

let alignment_error t ~cx ~cy =
  let gx, gy = origin_of_positions t ~cx ~cy in
  let n = Array.length t.cells in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let c = t.cells.(i) in
    let dx = cx.(c) -. (gx +. t.off_x.(i)) in
    let dy = cy.(c) -. (gy +. t.off_y.(i)) in
    acc := !acc +. (dx *. dx) +. (dy *. dy)
  done;
  sqrt (!acc /. float_of_int n)
