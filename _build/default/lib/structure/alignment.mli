(** The alignment potential [A(x, y)] that makes global placement
    structure-aware.

    For each group with target offsets [o_i] and free origin [g],

    [A = sum_i ||c_i - (g + o_i)||^2]

    minimised over [g] in closed form (the optimal origin is the mean of
    [c_i - o_i]), so [A] reduces to the within-group variance of the
    origin estimates:

    [A = sum_i ||d_i - mean(d)||^2] with [d_i = c_i - o_i].

    The gradient w.r.t. cell [i]'s center is [2 (d_i - mean(d))] — linear,
    translation-invariant, and zero exactly when the group forms a perfect
    array.  The global placer adds [beta * A] to its objective. *)

val value : Dgroup.t list -> cx:float array -> cy:float array -> float

val value_grad :
  Dgroup.t list ->
  cx:float array ->
  cy:float array ->
  gx:float array ->
  gy:float array ->
  float
(** Gradients accumulate into [gx]/[gy]. *)

val total_error : Dgroup.t list -> cx:float array -> cy:float array -> float
(** Cell-count-weighted mean of {!Dgroup.alignment_error} — the reported
    alignment metric. *)
