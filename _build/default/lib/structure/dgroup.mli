(** Placement-time view of a datapath group: every member cell gets a target
    offset inside an idealized rows-by-stages array.

    Slice [s] of the group occupies (relative) row [s]; stage [k] occupies a
    column whose width is the widest member of that stage (plus a site of
    spacing).  Offsets are {e center} offsets from the group origin (the
    lower-left corner of the idealized array), which stays a free quantity:
    the alignment potential is translation-invariant. *)

type t = {
  group : Dpp_netlist.Groups.t;
  cells : int array;  (** member cell ids *)
  off_x : float array;  (** target center offset per member *)
  off_y : float array;
  width : float;  (** idealized array width *)
  height : float;
}

val build :
  ?stage_order:int array ->
  ?slice_order:int array ->
  ?fold:int ->
  Dpp_netlist.Design.t ->
  Dpp_netlist.Groups.t ->
  t
(** [stage_order.(k)] is the array column where logical stage [k] lands
    (default identity); [slice_order.(s)] likewise for rows.  [fold] splits
    the slices into that many serpentine column blocks (default: whatever
    balances the footprint aspect ratio; 1 = classic one-row-per-slice).
    @raise Invalid_argument if the group has no placeable member. *)

val build_all : Dpp_netlist.Design.t -> Dpp_netlist.Groups.t list -> t list
(** Groups whose idealized array cannot fit the die (even after clamping)
    are dropped with a warning via [Logs]. *)

val build_all_ordered :
  Dpp_netlist.Design.t ->
  Dpp_netlist.Groups.t list ->
  cx:float array ->
  cy:float array ->
  t list
(** Like {!build_all}, but each group's axes are ordered by {e dataflow}:
    stage columns are chained greedily so that heavily connected stages end
    up in adjacent columns (and likewise slice rows, which puts carry
    chains on neighbouring rows), then each chain is oriented to correlate
    positively with the initial placement [cx]/[cy] so that, e.g., two
    groups joined by a bit-parallel bus keep compatible bit orders.
    Extracted groups carry stages in BFS-discovery order, which is
    arbitrary relative to the dataflow; without this reordering the
    alignment force fights the net forces instead of helping them. *)

val of_movable_macro : Dpp_netlist.Design.t -> int -> t
(** A single-cell pseudo-group for a movable multi-row macro (an embedded
    RAM): the mixed-size flow places such cells through the same rigid
    machinery as datapath arrays.
    @raise Invalid_argument if the cell is fixed. *)

val movable_macros : Dpp_netlist.Design.t -> int list
(** Movable cells taller than one row — the mixed-size population. *)

val internal_coupling : Dpp_netlist.Design.t -> Dpp_netlist.Groups.t -> float
(** Fraction of the group's pin incidences that lie on group-internal nets
    (a net with no pin outside the group).  Bit-sliced datapaths score
    ~0.75+; structures dominated by boundary buses/ports (array multiplier
    operand rows/columns, tiny register files) score lower, and
    constraining those loses wirelength — the flow filters on this
    score, mirroring the paper's "regularity evaluation" step. *)

val slice_span : Dpp_netlist.Design.t -> Dpp_netlist.Groups.t -> float
(** Mean, over the group's internal nets, of the slice-index span
    (max - min slice) of the net's members.  Bit-sliced logic scores ~0-1
    (slice-local cones and carries); butterfly-style structures (barrel
    shifters: bit i drives bit i +/- 2^l) score much higher, and a 2-D
    array placement is anti-optimal for them — the flow's regularity
    filter rejects groups above a span threshold. *)

val origin_of_positions : t -> cx:float array -> cy:float array -> float * float
(** The least-squares optimal group origin for the current cell centers:
    the mean of [(center_i - offset_i)]. *)

val alignment_error : t -> cx:float array -> cy:float array -> float
(** Root-mean-square distance between members and their idealized slots at
    the optimal origin — the F3 "alignment error" metric. *)
