(** Post-GP group snapping: turn each (nearly aligned) group into an exact
    legal 2-D array, producing rigid obstacle rectangles the legalizer must
    respect.

    Groups are processed largest-first.  Each gets the least-squares origin
    of its members, rounded to the row/site grid and clamped in-die; then
    every overlap-free candidate on an outward spiral (up to a bounded
    radius) is scored by the {e actual HPWL of the group's incident nets}
    with the members test-placed there, and the best candidate wins — a
    first-feasible rule loses several percent of wirelength when arrays
    contend for the same region.  If no free spot exists the group keeps
    its clamped position (logged, never fatal).

    Groups whose footprint exceeds [max_die_fraction] of the die are
    {e not} snapped: a rigid block that large dictates the whole floorplan
    and reliably loses wirelength, so oversized groups stay "soft" (their
    alignment force shaped GP, and the ordinary legalizer takes them from
    there).  They are absent from the returned list. *)

type placed = {
  dgroup : Dgroup.t;
  origin_x : float;
  origin_y : float;
  rect : Dpp_geom.Rect.t;  (** occupied footprint *)
}

val snap :
  ?max_die_fraction:float ->
  ?extra_obstacles:Dpp_geom.Rect.t list ->
  Dpp_netlist.Design.t ->
  Dgroup.t list ->
  cx:float array ->
  cy:float array ->
  placed list
(** [max_die_fraction] defaults to 0.25; [extra_obstacles] are additional
    keep-out rectangles (e.g. already-snapped movable macros). *)

val apply : placed -> cx:float array -> cy:float array -> unit
(** Write the members' snapped center positions into the coordinate
    arrays. *)

val obstacles : placed list -> Dpp_geom.Rect.t list
