lib/structure/shaping.ml: Array Dgroup Dpp_geom Dpp_netlist Dpp_wirelen Float Hashtbl List Logs
