lib/structure/dgroup.ml: Array Dpp_geom Dpp_netlist Dpp_util Float Fun Hashtbl List Logs Option
