lib/structure/alignment.ml: Array Dgroup List
