lib/structure/dgroup.mli: Dpp_netlist
