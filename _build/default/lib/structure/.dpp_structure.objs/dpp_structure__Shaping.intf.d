lib/structure/shaping.mli: Dgroup Dpp_geom Dpp_netlist
