lib/structure/alignment.mli: Dgroup
