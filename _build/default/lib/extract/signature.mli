(** Functional signatures by Weisfeiler–Lehman colour refinement over the
    cell/net incidence structure.

    Round 0 colours each movable cell by its library master.  Each round
    re-colours a cell by hashing its previous colour together with the
    sorted multiset of [(own pin class, net degree bucket, neighbour colour,
    neighbour pin class)] tuples over its {e data} nets — control nets are
    excluded so that replicated bit-slices, whose only difference is which
    control-net {e bit position} they occupy, keep identical colours.
    After [k] rounds two cells share a colour iff their radius-[k]
    data-neighbourhoods are isomorphic, which is the replication the
    extractor keys on.

    Pin classes are geometric ([direction, dx, dy] of the pin), not pin
    ids, so signatures survive Bookshelf round trips that renumber pins. *)

type t = {
  colors : int array;  (** per cell: compacted class id, or -1 for fixed cells *)
  num_classes : int;
  class_members : int array array;  (** class id -> member cells, ascending *)
}

val compute :
  Dpp_netlist.Design.t ->
  Dpp_netlist.Hypergraph.t ->
  Netclass.t ->
  iterations:int ->
  t

val pin_class : Dpp_netlist.Design.t -> int -> int
(** Stable hash of a pin's (direction, dx, dy) within its cell. *)

val class_of : t -> int -> int
(** Class id of a cell ([-1] for fixed/pad cells). *)
