(** Typed connection labels over data nets.

    A directed edge [u -> v] exists when a data net joins pin [p] of cell
    [u] to pin [q] of cell [v]; its {e label} is the hash of
    [(class u, pin class p, class v, pin class q)].  In a replicated
    bit-slice structure the same label appears once per slice, so label
    frequency separates structural wiring from incidental wiring, and
    following one label in parallel from every cell of a column lands on
    another column. *)

type t

val build : Dpp_netlist.Design.t -> Dpp_netlist.Hypergraph.t -> Netclass.t -> Signature.t -> t

val labels_from_class : t -> int -> int list
(** Distinct labels whose source class is the given signature class. *)

val count : t -> int -> int
(** Number of edges carrying a label. *)

val target : t -> cell:int -> label:int -> int option
(** The unique target of [cell] under [label]; [None] when absent or
    ambiguous (two different targets). *)

val targets_exn : t -> cell:int -> label:int -> int list
(** All targets (possibly empty), for diagnostics. *)

val source_class : t -> int -> int
(** Source signature class of a label. *)

val target_class : t -> int -> int
