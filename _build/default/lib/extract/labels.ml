module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types

type t = {
  (* cell -> (label, target) list, deduplicated *)
  out_edges : (int * int) list array;
  label_count : (int, int) Hashtbl.t;
  by_source_class : (int, int list) Hashtbl.t;  (** class -> labels *)
  label_classes : (int, int * int) Hashtbl.t;  (** label -> (src class, dst class) *)
}

let mix h v =
  let z = Int64.add (Int64.of_int h) (Int64.mul (Int64.of_int v) 0x9E3779B97F4A7C15L) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.logand (Int64.logxor z (Int64.shift_right_logical z 31)) 0x3FFFFFFFFFFFFFFFL)

let build (d : Design.t) (_h : Dpp_netlist.Hypergraph.t) (nc : Netclass.t) (sg : Signature.t) =
  let n_cells = Design.num_cells d in
  let out_edges = Array.make n_cells [] in
  let label_count = Hashtbl.create 1024 in
  let label_classes = Hashtbl.create 1024 in
  let add_edge u p v q =
    let cu = Signature.class_of sg u and cv = Signature.class_of sg v in
    if cu >= 0 && cv >= 0 then begin
      let label = mix (mix (mix (mix 7 cu) (Signature.pin_class d p)) cv) (Signature.pin_class d q) in
      (* dedup: same (label, target) may arise from parallel nets *)
      if not (List.mem (label, v) out_edges.(u)) then begin
        out_edges.(u) <- (label, v) :: out_edges.(u);
        Hashtbl.replace label_count label
          (1 + Option.value ~default:0 (Hashtbl.find_opt label_count label));
        if not (Hashtbl.mem label_classes label) then Hashtbl.add label_classes label (cu, cv)
      end
    end
  in
  for n = 0 to Design.num_nets d - 1 do
    if Netclass.kind nc n = Netclass.Data then begin
      let pins = (Design.net d n).Types.n_pins in
      Array.iter
        (fun p ->
          let pu = Design.pin d p in
          Array.iter
            (fun q ->
              if p <> q then begin
                let pv = Design.pin d q in
                if pu.Types.p_cell <> pv.Types.p_cell then
                  add_edge pu.Types.p_cell p pv.Types.p_cell q
              end)
            pins)
        pins
    end
  done;
  let by_source_class = Hashtbl.create 256 in
  Hashtbl.iter
    (fun label (src, _) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_source_class src) in
      Hashtbl.replace by_source_class src (label :: prev))
    label_classes;
  (* Deterministic label order within a class. *)
  let by_source_class_sorted = Hashtbl.create 256 in
  Hashtbl.iter
    (fun src labels -> Hashtbl.add by_source_class_sorted src (List.sort compare labels))
    by_source_class;
  { out_edges; label_count; by_source_class = by_source_class_sorted; label_classes }

let labels_from_class t cls = Option.value ~default:[] (Hashtbl.find_opt t.by_source_class cls)

let count t label = Option.value ~default:0 (Hashtbl.find_opt t.label_count label)

let targets_exn t ~cell ~label =
  List.filter_map (fun (l, v) -> if l = label then Some v else None) t.out_edges.(cell)

let target t ~cell ~label =
  match targets_exn t ~cell ~label with [ v ] -> Some v | [] | _ :: _ -> None

let source_class t label = fst (Hashtbl.find t.label_classes label)
let target_class t label = snd (Hashtbl.find t.label_classes label)
