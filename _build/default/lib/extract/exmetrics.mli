(** Extraction quality against ground truth (Table 2).

    The paper could only spot-check its extractor by hand; the synthetic
    benchmarks carry exact labels, so we report proper cell-level
    precision/recall and group-level matching. *)

type t = {
  true_groups : int;
  found_groups : int;
  matched_groups : int;  (** found groups with cell-Jaccard >= 0.5 to some true group *)
  true_cells : int;
  found_cells : int;
  correct_cells : int;  (** found cells that are in some true group *)
  precision : float;  (** correct / found (1.0 when nothing found) *)
  recall : float;  (** correct / true (1.0 when nothing to find) *)
  f1 : float;
}

val compare_to_truth :
  truth:Dpp_netlist.Groups.t list -> found:Dpp_netlist.Groups.t list -> t

val header : string list
val to_row : string -> t -> string list
(** First column is the design name. *)
