module Groups = Dpp_netlist.Groups

type t = {
  true_groups : int;
  found_groups : int;
  matched_groups : int;
  true_cells : int;
  found_cells : int;
  correct_cells : int;
  precision : float;
  recall : float;
  f1 : float;
}

let cell_set groups =
  let h = Hashtbl.create 1024 in
  List.iter (fun g -> Array.iter (fun c -> Hashtbl.replace h c ()) (Groups.cell_ids g)) groups;
  h

let compare_to_truth ~truth ~found =
  let true_set = cell_set truth in
  let found_set = cell_set found in
  let correct = ref 0 in
  Hashtbl.iter (fun c () -> if Hashtbl.mem true_set c then incr correct) found_set;
  let matched =
    List.length
      (List.filter
         (fun fg -> List.exists (fun tg -> Groups.jaccard fg tg >= 0.5) truth)
         found)
  in
  let nf = Hashtbl.length found_set and nt = Hashtbl.length true_set in
  let precision = if nf = 0 then 1.0 else float_of_int !correct /. float_of_int nf in
  let recall = if nt = 0 then 1.0 else float_of_int !correct /. float_of_int nt in
  let f1 =
    if precision +. recall <= 0.0 then 0.0 else 2.0 *. precision *. recall /. (precision +. recall)
  in
  {
    true_groups = List.length truth;
    found_groups = List.length found;
    matched_groups = matched;
    true_cells = nt;
    found_cells = nf;
    correct_cells = !correct;
    precision;
    recall;
    f1;
  }

let header =
  [ "design"; "#true-grp"; "#found-grp"; "#matched"; "#true-cells"; "#found-cells"; "prec"; "recall"; "F1" ]

let to_row name t =
  [
    name;
    string_of_int t.true_groups;
    string_of_int t.found_groups;
    string_of_int t.matched_groups;
    string_of_int t.true_cells;
    string_of_int t.found_cells;
    Printf.sprintf "%.3f" t.precision;
    Printf.sprintf "%.3f" t.recall;
    Printf.sprintf "%.3f" t.f1;
  ]
