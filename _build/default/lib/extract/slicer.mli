(** Slice growth and group formation — the extraction core.

    Two seed sources create {e columns} (one cell per slice, same signature
    class, with slice indices):

    - {b control columns}: the same-class sinks of a control net sit one
      per slice at the same stage (op-selects, clocks, write enables,
      multiplier operand columns);
    - {b chain columns}: for structures with no control anchor (plain
      carry chains, comparators), a label composition that returns to its
      starting class as an injective fixed-point-free partial map is a
      slice-successor relation; its orbits, read off in order, are columns
      (e.g. adder: carry-out -> next sum-xor -> p-xor -> transmit-and ->
      carry-out composes to "slice i -> slice i+1").

    Columns then grow by {e parallel BFS}: following one label from every
    cell of a column lands on a new same-class column with inherited slice
    ids; expansions that mostly hit cells already owned, or whose targets
    collide, are rejected.  Finally each group's columns become the stage
    axis and its slice ids the row axis of a {!Dpp_netlist.Groups.t}. *)

type config = {
  max_data_degree : int;  (** nets above this are control; default 5 *)
  refine_iterations : int;  (** signature WL rounds; default 3 *)
  min_slices : int;  (** minimum group height; default 4 *)
  min_stages : int;  (** minimum group width; default 2 *)
  coverage : float;  (** fraction of a column a label must map; default 0.7 *)
  max_conflict : float;  (** tolerated cross-group collisions; default 0.2 *)
  chain_depth : int;  (** max label-composition length; default 4 *)
  max_labels_per_class : int;  (** DFS branching cap; default 12 *)
}

val default_config : config

type result = {
  groups : Dpp_netlist.Groups.t list;  (** extracted, filtered, named "dp0".. *)
  seeds_control : int;  (** control columns accepted *)
  seeds_chain : int;  (** chain columns accepted *)
  columns_grown : int;  (** BFS expansions accepted *)
}

val run : Dpp_netlist.Design.t -> config -> result
