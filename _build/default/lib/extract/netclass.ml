module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types
module Hypergraph = Dpp_netlist.Hypergraph

type kind = Data | Control | Ignored

type t = { kinds : kind array; movable_degree : int array }

let classify (d : Design.t) (h : Hypergraph.t) ~max_data_degree =
  if max_data_degree < 2 then invalid_arg "Netclass.classify: max_data_degree < 2";
  let nn = Design.num_nets d in
  let kinds = Array.make nn Ignored in
  let movable_degree = Array.make nn 0 in
  for n = 0 to nn - 1 do
    let deg = ref 0 in
    Hypergraph.iter_cells_of_net h n (fun c ->
        if not (Types.is_fixed_kind (Design.cell d c).Types.c_kind) then incr deg);
    movable_degree.(n) <- !deg;
    kinds.(n) <-
      (if !deg < 2 then Ignored else if !deg <= max_data_degree then Data else Control)
  done;
  { kinds; movable_degree }

let kind t n = t.kinds.(n)
