(** Net classification for extraction.

    Datapath regularity shows up in two orthogonal net populations:
    {e data nets} (low fanout, linking one bit-slice's cells or neighbouring
    slices — carries) and {e control nets} (one pin on every slice at the
    same stage — op-selects, clocks, write-enables).  Degree is measured in
    distinct {e movable} cells, so pad-fed buses stay data nets. *)

type kind =
  | Data  (** low fanout; used for signature refinement and slice growth *)
  | Control  (** slice-spanning; used as column seeds *)
  | Ignored  (** degenerate (fewer than 2 movable cells) *)

type t = {
  kinds : kind array;  (** per net *)
  movable_degree : int array;  (** distinct movable cells per net *)
}

val classify : Dpp_netlist.Design.t -> Dpp_netlist.Hypergraph.t -> max_data_degree:int -> t
(** Nets with 2..[max_data_degree] movable cells are [Data]; with more,
    [Control]. *)

val kind : t -> int -> kind
