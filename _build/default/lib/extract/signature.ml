module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types
module Hypergraph = Dpp_netlist.Hypergraph

type t = { colors : int array; num_classes : int; class_members : int array array }

(* Deterministic int mixing (splitmix64 finaliser), independent of
   Hashtbl.hash versioning. *)
let mix h v =
  let z = Int64.add (Int64.of_int h) (Int64.mul (Int64.of_int v) 0x9E3779B97F4A7C15L) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.logand (Int64.logxor z (Int64.shift_right_logical z 31)) 0x3FFFFFFFFFFFFFFFL)

let hash_string s = String.fold_left (fun acc c -> mix acc (Char.code c)) 17 s

let pin_class (d : Design.t) p =
  let pin = Design.pin d p in
  let dir =
    match pin.Types.p_dir with Types.Input -> 1 | Types.Output -> 2 | Types.Inout -> 3
  in
  let q f = int_of_float (Float.round (f *. 16.0)) in
  mix (mix (mix 23 dir) (q pin.Types.p_dx)) (q pin.Types.p_dy)

let degree_bucket deg = if deg <= 4 then deg else if deg <= 8 then 5 else 6

(* Compact arbitrary hash values to dense ids 0..k-1 (stable: first-seen
   order by ascending cell id). *)
let compact colors =
  let tbl = Hashtbl.create 256 in
  let next = ref 0 in
  Array.map
    (fun c ->
      if c < 0 then -1
      else
        match Hashtbl.find_opt tbl c with
        | Some id -> id
        | None ->
          let id = !next in
          Hashtbl.add tbl c id;
          incr next;
          id)
    colors

let compute (d : Design.t) (_h : Hypergraph.t) (nc : Netclass.t) ~iterations =
  let n_cells = Design.num_cells d in
  let colors =
    Array.init n_cells (fun i ->
        let c = Design.cell d i in
        if Types.is_fixed_kind c.Types.c_kind then -1 else hash_string c.Types.c_master)
  in
  let colors = ref (compact colors) in
  (* pin -> class hash, precomputed once *)
  let pcls = Array.init (Design.num_pins d) (fun p -> pin_class d p) in
  for _round = 1 to iterations do
    let next = Array.make n_cells (-1) in
    for i = 0 to n_cells - 1 do
      if !colors.(i) >= 0 then begin
        (* Gather (own pin class, net bucket, neighbour color, neighbour pin
           class) tuples over data nets, hash order-independently by
           sorting.

           Fanout-only: a cell is characterised by what it DRIVES, never by
           what drives it.  Replicated slices receive their operands from
           arbitrary external logic (a different glue cell per bit), so
           fanin tuples would individuate every replica and destroy the
           classes; fanout inside a bit-sliced structure is replicated by
           construction. *)
        let tuples = ref [] in
        Array.iter
          (fun p ->
            let pin = Design.pin d p in
            let n = pin.Types.p_net in
            if
              pin.Types.p_dir = Types.Output
              && n >= 0
              && Netclass.kind nc n = Netclass.Data
            then begin
              let bucket = degree_bucket nc.Netclass.movable_degree.(n) in
              Array.iter
                (fun q ->
                  let qpin = Design.pin d q in
                  let j = qpin.Types.p_cell in
                  if j <> i && !colors.(j) >= 0 then
                    tuples := mix (mix (mix (mix 5 pcls.(p)) bucket) !colors.(j)) pcls.(q) :: !tuples)
                (Design.net d n).Types.n_pins
            end)
          (Design.cell d i).Types.c_pins;
        let tuples = List.sort compare !tuples in
        next.(i) <- List.fold_left mix (mix 11 !colors.(i)) tuples
      end
    done;
    colors := compact next
  done;
  let colors = !colors in
  let num_classes = Array.fold_left (fun m c -> max m (c + 1)) 0 colors in
  let buckets = Array.make num_classes [] in
  for i = n_cells - 1 downto 0 do
    if colors.(i) >= 0 then buckets.(colors.(i)) <- i :: buckets.(colors.(i))
  done;
  { colors; num_classes; class_members = Array.map Array.of_list buckets }

let class_of t i = t.colors.(i)
