lib/extract/exmetrics.ml: Array Dpp_netlist Hashtbl List Printf
