lib/extract/slicer.mli: Dpp_netlist
