lib/extract/signature.mli: Dpp_netlist Netclass
