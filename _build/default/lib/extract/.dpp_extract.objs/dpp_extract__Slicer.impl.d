lib/extract/slicer.ml: Array Dpp_netlist Dpp_util Hashtbl Labels List Netclass Option Printf Queue Signature
