lib/extract/labels.mli: Dpp_netlist Netclass Signature
