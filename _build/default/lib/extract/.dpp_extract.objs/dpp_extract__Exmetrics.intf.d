lib/extract/exmetrics.mli: Dpp_netlist
