lib/extract/netclass.ml: Array Dpp_netlist
