lib/extract/labels.ml: Array Dpp_netlist Hashtbl Int64 List Netclass Option Signature
