lib/extract/netclass.mli: Dpp_netlist
