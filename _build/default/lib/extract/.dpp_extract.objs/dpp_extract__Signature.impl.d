lib/extract/signature.ml: Array Char Dpp_netlist Float Hashtbl Int64 List Netclass String
