module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types
module Hypergraph = Dpp_netlist.Hypergraph
module Groups = Dpp_netlist.Groups

type config = {
  max_data_degree : int;
  refine_iterations : int;
  min_slices : int;
  min_stages : int;
  coverage : float;
  max_conflict : float;
  chain_depth : int;
  max_labels_per_class : int;
}

let default_config =
  {
    max_data_degree = 5;
    refine_iterations = 3;
    min_slices = 4;
    min_stages = 2;
    coverage = 0.7;
    max_conflict = 0.2;
    chain_depth = 4;
    max_labels_per_class = 12;
  }

type result = {
  groups : Groups.t list;
  seeds_control : int;
  seeds_chain : int;
  columns_grown : int;
}

type state = {
  cfg : config;
  sg : Signature.t;
  lb : Labels.t;
  group_of : int array;  (** cell -> group id or -1 *)
  slice_of : int array;  (** cell -> slice id within its group *)
  group_columns : int array Dpp_util.Dyn.t Dpp_util.Dyn.t;  (** group -> columns *)
  mutable n_control : int;
  mutable n_chain : int;
  mutable n_grown : int;
}

let new_group st =
  let g = Dpp_util.Dyn.length st.group_columns in
  Dpp_util.Dyn.push st.group_columns (Dpp_util.Dyn.create ());
  g

let assign st g column =
  Array.iter (fun c -> if c >= 0 then st.group_of.(c) <- g) column;
  Dpp_util.Dyn.push (Dpp_util.Dyn.get st.group_columns g) column

(* ------------------------------------------------------------------ *)
(* Parallel BFS expansion                                              *)
(* ------------------------------------------------------------------ *)

(* Try to map column [cells] through [label]; returns the new column on
   success.  Slice ids propagate from source to target. *)
let try_expand st g label cells =
  let m = Array.length cells in
  let targets = Array.make m (-1) in
  let seen = Hashtbl.create m in
  let n_new = ref 0 and n_conflict = ref 0 in
  Array.iteri
    (fun k c ->
      if c >= 0 then
        match Labels.target st.lb ~cell:c ~label with
        | None -> ()
        | Some t ->
          if Hashtbl.mem seen t then begin
            (* duplicate target: drop both occurrences *)
            (match Hashtbl.find_opt seen t with
            | Some k' when k' >= 0 ->
              (* undo the earlier "new" claim on this target *)
              targets.(k') <- -1;
              Hashtbl.replace seen t (-1);
              decr n_new;
              incr n_conflict
            | Some _ | None -> ());
            incr n_conflict
          end
          else if st.group_of.(t) = -1 then begin
            Hashtbl.add seen t k;
            targets.(k) <- t;
            incr n_new
          end
          else if st.group_of.(t) = g && st.slice_of.(t) = st.slice_of.(c) then
            (* already discovered at the right slice: consistent, not new *)
            Hashtbl.add seen t (-1)
          else begin
            Hashtbl.add seen t (-1);
            incr n_conflict
          end)
    cells;
  let live = Array.fold_left (fun acc c -> if c >= 0 then acc + 1 else acc) 0 cells in
  if
    !n_new >= st.cfg.min_slices
    && float_of_int !n_new >= st.cfg.coverage *. float_of_int live
    && float_of_int !n_conflict <= st.cfg.max_conflict *. float_of_int live
  then begin
    (* commit *)
    Array.iteri
      (fun k t ->
        if t >= 0 then begin
          st.group_of.(t) <- g;
          st.slice_of.(t) <- st.slice_of.(cells.(k))
        end)
      targets;
    Some (Array.of_list (Array.to_list targets |> List.filter (fun t -> t >= 0)))
  end
  else None

let expand_from st g seed_column =
  let queue = Queue.create () in
  Queue.push seed_column queue;
  while not (Queue.is_empty queue) do
    let cells = Queue.pop queue in
    let live = Array.to_list cells |> List.filter (fun c -> c >= 0) in
    match live with
    | [] -> ()
    | c0 :: _ ->
      let cls = Signature.class_of st.sg c0 in
      let labels = Labels.labels_from_class st.lb cls in
      List.iter
        (fun label ->
          match try_expand st g label cells with
          | Some column ->
            st.n_grown <- st.n_grown + 1;
            assign st g column;
            Queue.push column queue
          | None -> ())
        labels
  done

(* ------------------------------------------------------------------ *)
(* Control-net seeding                                                 *)
(* ------------------------------------------------------------------ *)

let control_seeds st (d : Design.t) (h : Hypergraph.t) (nc : Netclass.t) =
  for n = 0 to Design.num_nets d - 1 do
    if Netclass.kind nc n = Netclass.Control then begin
      (* group sinks by signature class *)
      let by_class = Hashtbl.create 16 in
      Hypergraph.iter_cells_of_net h n (fun c ->
          let cls = Signature.class_of st.sg c in
          if cls >= 0 then
            Hashtbl.replace by_class cls
              (c :: Option.value ~default:[] (Hashtbl.find_opt by_class cls)));
      let classes = Hashtbl.fold (fun cls cells acc -> (cls, cells) :: acc) by_class [] in
      let classes = List.sort (fun (a, _) (b, _) -> compare a b) classes in
      List.iter
        (fun (_cls, cells) ->
          let cells = List.sort compare cells in
          let unvisited = List.for_all (fun c -> st.group_of.(c) = -1) cells in
          if List.length cells >= st.cfg.min_slices && unvisited then begin
            let column = Array.of_list cells in
            let g = new_group st in
            Array.iteri
              (fun k c ->
                st.group_of.(c) <- g;
                st.slice_of.(c) <- k)
              column;
            Dpp_util.Dyn.push (Dpp_util.Dyn.get st.group_columns g) column;
            st.n_control <- st.n_control + 1;
            expand_from st g column
          end)
        classes
    end
  done

(* ------------------------------------------------------------------ *)
(* Chain seeding                                                       *)
(* ------------------------------------------------------------------ *)

(* Search label compositions of length <= chain_depth from class [cls]
   back to [cls] whose composed partial map over the class members is
   injective, fixed-point-free and covers >= min_slices cells. *)
let find_successor st cls members =
  let m = Array.length members in
  let member_pos = Hashtbl.create m in
  Array.iteri (fun k c -> Hashtbl.add member_pos c k) members;
  let take_labels c =
    let labels = Labels.labels_from_class st.lb c in
    let labels =
      List.sort (fun a b -> compare (Labels.count st.lb b) (Labels.count st.lb a)) labels
    in
    List.filteri (fun i _ -> i < st.cfg.max_labels_per_class) labels
  in
  let valid h =
    let seen = Hashtbl.create m in
    let defined = ref 0 in
    let ok = ref true in
    Array.iteri
      (fun pos t ->
        if t >= 0 then begin
          if not (Hashtbl.mem member_pos t) then ok := false
          else begin
            if t = members.(pos) then ok := false;
            if Hashtbl.mem seen t then ok := false else Hashtbl.add seen t ();
            incr defined
          end
        end)
      h;
    !ok && !defined >= st.cfg.min_slices
  in
  let exception Found of int array in
  let rec dfs cur_class map depth =
    if depth < st.cfg.chain_depth then
      List.iter
        (fun label ->
          let next = Array.make m (-1) in
          let defined = ref 0 in
          Array.iteri
            (fun pos c ->
              if c >= 0 then
                match Labels.target st.lb ~cell:c ~label with
                | Some t ->
                  next.(pos) <- t;
                  incr defined
                | None -> ())
            map;
          if !defined >= st.cfg.min_slices then begin
            let tc = Labels.target_class st.lb label in
            if tc = cls then begin
              if valid next then raise (Found next)
            end
            else dfs tc next (depth + 1)
          end)
        (take_labels cur_class)
  in
  match dfs cls members 0 with
  | () -> None
  | exception Found h -> Some h

(* Decompose the successor map into ordered chains (slices in order). *)
let chains_of_successor members h =
  let m = Array.length members in
  let succ = Hashtbl.create m in
  let has_pred = Hashtbl.create m in
  Array.iteri
    (fun pos t ->
      if t >= 0 then begin
        Hashtbl.replace succ members.(pos) t;
        Hashtbl.replace has_pred t ()
      end)
    h;
  let visited = Hashtbl.create m in
  let walk start =
    let rec go c acc =
      if Hashtbl.mem visited c then List.rev acc
      else begin
        Hashtbl.add visited c ();
        match Hashtbl.find_opt succ c with
        | Some t -> go t (c :: acc)
        | None -> List.rev (c :: acc)
      end
    in
    go start []
  in
  let chains = ref [] in
  (* path starts first *)
  Array.iter
    (fun c -> if (not (Hashtbl.mem has_pred c)) && not (Hashtbl.mem visited c) then chains := walk c :: !chains)
    members;
  (* remaining cycles: break at the smallest id *)
  Array.iter (fun c -> if not (Hashtbl.mem visited c) then chains := walk c :: !chains) members;
  List.rev !chains

let chain_seeds st =
  for cls = 0 to st.sg.Signature.num_classes - 1 do
    let members =
      Array.of_list
        (Array.to_list st.sg.Signature.class_members.(cls)
        |> List.filter (fun c -> st.group_of.(c) = -1))
    in
    if Array.length members >= st.cfg.min_slices then begin
      match find_successor st cls members with
      | None -> ()
      | Some h ->
        List.iter
          (fun chain ->
            if List.length chain >= st.cfg.min_slices then begin
              let column = Array.of_list chain in
              (* all cells must still be free (prior chain of same class
                 cannot overlap, but BFS of a previous chain might) *)
              if Array.for_all (fun c -> st.group_of.(c) = -1) column then begin
                let g = new_group st in
                Array.iteri
                  (fun k c ->
                    st.group_of.(c) <- g;
                    st.slice_of.(c) <- k)
                  column;
                Dpp_util.Dyn.push (Dpp_util.Dyn.get st.group_columns g) column;
                st.n_chain <- st.n_chain + 1;
                expand_from st g column
              end
            end)
          (chains_of_successor members h)
    end
  done

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)
(* ------------------------------------------------------------------ *)

let assemble st =
  let out = ref [] in
  let gid = ref 0 in
  Dpp_util.Dyn.iteri
    (fun _g columns ->
      let n_stages = Dpp_util.Dyn.length columns in
      if n_stages >= st.cfg.min_stages then begin
        (* collect slice ids present *)
        let slice_ids = Hashtbl.create 64 in
        Dpp_util.Dyn.iter
          (fun col -> Array.iter (fun c -> if c >= 0 then Hashtbl.replace slice_ids st.slice_of.(c) ()) col)
          columns;
        let rows_list = Hashtbl.fold (fun s () acc -> s :: acc) slice_ids [] |> List.sort compare in
        let n_slices = List.length rows_list in
        if n_slices >= st.cfg.min_slices then begin
          let row_index = Hashtbl.create n_slices in
          List.iteri (fun i s -> Hashtbl.add row_index s i) rows_list;
          let matrix = Array.make_matrix n_slices n_stages (-1) in
          Dpp_util.Dyn.iteri
            (fun stage col ->
              Array.iter
                (fun c ->
                  if c >= 0 then begin
                    let r = Hashtbl.find row_index st.slice_of.(c) in
                    matrix.(r).(stage) <- c
                  end)
                col)
            columns;
          let name = Printf.sprintf "dp%d" !gid in
          incr gid;
          out := Groups.make name matrix :: !out
        end
      end)
    st.group_columns;
  List.rev !out

let run (d : Design.t) cfg =
  let h = Hypergraph.build d in
  let nc = Netclass.classify d h ~max_data_degree:cfg.max_data_degree in
  let sg = Signature.compute d h nc ~iterations:cfg.refine_iterations in
  let lb = Labels.build d h nc sg in
  let n_cells = Design.num_cells d in
  let st =
    {
      cfg;
      sg;
      lb;
      group_of = Array.make n_cells (-1);
      slice_of = Array.make n_cells (-1);
      group_columns = Dpp_util.Dyn.create ();
      n_control = 0;
      n_chain = 0;
      n_grown = 0;
    }
  in
  control_seeds st d h nc;
  chain_seeds st;
  {
    groups = assemble st;
    seeds_control = st.n_control;
    seeds_chain = st.n_chain;
    columns_grown = st.n_grown;
  }
