type t = { parent : int array; rank : int array; size : int array }

let create n =
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; size = Array.make n 1 }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    let ra, rb = if t.rank.(ra) < t.rank.(rb) then rb, ra else ra, rb in
    t.parent.(rb) <- ra;
    t.size.(ra) <- t.size.(ra) + t.size.(rb);
    if t.rank.(ra) = t.rank.(rb) then t.rank.(ra) <- t.rank.(ra) + 1
  end

let same t a b = find t a = find t b

let size t i = t.size.(find t i)

let count_sets t =
  let n = Array.length t.parent in
  let c = ref 0 in
  for i = 0 to n - 1 do
    if find t i = i then incr c
  done;
  !c

let groups t =
  let n = Array.length t.parent in
  let out = Array.make n [] in
  for i = n - 1 downto 0 do
    let r = find t i in
    out.(r) <- i :: out.(r)
  done;
  out
