(** Minimal CSV writer used to dump experiment series for offline plotting.
    Fields containing commas, quotes or newlines are quoted per RFC 4180. *)

val escape_field : string -> string
(** Quote a single field if needed. *)

val row_to_string : string list -> string
(** One CSV line, without trailing newline. *)

val write : string -> string list list -> unit
(** [write path rows] writes all rows (first row is conventionally the
    header) to [path], overwriting. *)

val float_cell : float -> string
(** Compact float formatting ("%.6g") shared by all outputs. *)
