(** Disjoint-set forest over dense integer ids, with union by rank and path
    compression.  Used by the extractor to merge slice candidates and by the
    netlist validator for connectivity checks. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets [{0}, ..., {n-1}]. *)

val find : t -> int -> int
(** Canonical representative; compresses paths. *)

val union : t -> int -> int -> unit
(** Merge the two sets.  No-op if already merged. *)

val same : t -> int -> int -> bool
(** Whether two elements share a set. *)

val size : t -> int -> int
(** Number of elements in the set containing the argument. *)

val count_sets : t -> int
(** Number of distinct sets remaining. *)

val groups : t -> int list array
(** [groups t] returns, indexed by representative, the member list of every
    set; non-representative slots hold [[]].  Members appear in increasing
    order. *)
