lib/util/timer.ml: Hashtbl List Option Unix
