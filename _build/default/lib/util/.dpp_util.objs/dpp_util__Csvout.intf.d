lib/util/csvout.mli:
