lib/util/csvout.ml: Buffer Fun List Printf String
