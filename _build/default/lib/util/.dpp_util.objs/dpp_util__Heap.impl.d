lib/util/heap.ml: Array Float List
