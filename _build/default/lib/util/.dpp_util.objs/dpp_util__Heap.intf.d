lib/util/heap.mli:
