lib/util/dyn.mli:
