lib/util/rng.mli:
