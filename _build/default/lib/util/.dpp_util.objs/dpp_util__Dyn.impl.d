lib/util/dyn.ml: Array
