lib/util/statx.mli:
