lib/util/statx.ml: Array Float
