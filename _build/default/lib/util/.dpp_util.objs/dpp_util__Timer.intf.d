lib/util/timer.mli:
