(** Growable array (OCaml 5.1 predates stdlib [Dynarray]).  Used by the
    netlist builder and the extractor's work lists. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val to_array : 'a t -> 'a array
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val clear : 'a t -> unit
val of_array : 'a array -> 'a t
