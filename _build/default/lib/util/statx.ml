let sum a =
  (* Kahan summation: placement objectives sum millions of terms. *)
  let s = ref 0.0 and c = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let y = a.(i) -. !c in
    let t = !s +. y in
    c := t -. !s -. y;
    s := t
  done;
  !s

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else sum a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      let d = a.(i) -. m in
      acc := !acc +. (d *. d)
    done;
    !acc /. float_of_int n
  end

let stddev a = sqrt (variance a)

let median a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let b = Array.copy a in
    Array.sort Float.compare b;
    if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0
  end

let geomean a =
  let n = Array.length a in
  if n = 0 then 1.0
  else begin
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      if a.(i) <= 0.0 then invalid_arg "Statx.geomean: non-positive value";
      acc := !acc +. log a.(i)
    done;
    exp (!acc /. float_of_int n)
  end

let minimum a = Array.fold_left min infinity a
let maximum a = Array.fold_left max neg_infinity a

let quantile a q =
  let n = Array.length a in
  if n = 0 then 0.0
  else if q <= 0.0 then minimum a
  else if q >= 1.0 then maximum a
  else begin
    let b = Array.copy a in
    Array.sort Float.compare b;
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    b.(lo) +. (frac *. (b.(hi) -. b.(lo)))
  end

let entropy w =
  let total = sum w in
  if total <= 0.0 then 0.0
  else begin
    let acc = ref 0.0 in
    for i = 0 to Array.length w - 1 do
      if w.(i) > 0.0 then begin
        let p = w.(i) /. total in
        acc := !acc -. (p *. log p)
      end
    done;
    !acc
  end

let pearson x y =
  let n = Array.length x in
  if n <> Array.length y then invalid_arg "Statx.pearson: length mismatch";
  if n = 0 then 0.0
  else begin
    let mx = mean x and my = mean y in
    let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = x.(i) -. mx and dy = y.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx = 0.0 || !syy = 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy)
  end
