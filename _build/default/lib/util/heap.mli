(** Binary min-heap with float priorities, used by the Steiner MST builder
    and the Tetris legalizer.  Payloads are arbitrary; priorities are
    compared with [Float.compare] so NaNs order deterministically. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h prio v] inserts [v] with priority [prio]. *)

val peek : 'a t -> (float * 'a) option
(** Minimum element without removal. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum element. *)

val pop_exn : 'a t -> float * 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val of_list : (float * 'a) list -> 'a t

val to_sorted_list : 'a t -> (float * 'a) list
(** Destructively drains the heap in ascending priority order. *)
