type 'a entry = { prio : float; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length h = h.len

let is_empty h = h.len = 0

let grow h =
  let cap = Array.length h.data in
  let ncap = if cap = 0 then 16 else cap * 2 in
  (* The placeholder below is never read past [len]. *)
  let nd = Array.make ncap h.data.(0) in
  Array.blit h.data 0 nd 0 h.len;
  h.data <- nd

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if Float.compare h.data.(i).prio h.data.(parent).prio < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && Float.compare h.data.(l).prio h.data.(!smallest).prio < 0 then smallest := l;
  if r < h.len && Float.compare h.data.(r).prio h.data.(!smallest).prio < 0 then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h prio value =
  let e = { prio; value } in
  if h.len = Array.length h.data then
    if h.len = 0 then h.data <- Array.make 16 e else grow h;
  h.data.(h.len) <- e;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let peek h = if h.len = 0 then None else Some (h.data.(0).prio, h.data.(0).value)

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      sift_down h 0
    end;
    Some (top.prio, top.value)
  end

let pop_exn h =
  match pop h with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear h = h.len <- 0

let of_list l =
  let h = create () in
  List.iter (fun (p, v) -> push h p v) l;
  h

let to_sorted_list h =
  let rec drain acc =
    match pop h with
    | None -> List.rev acc
    | Some x -> drain (x :: acc)
  in
  drain []
