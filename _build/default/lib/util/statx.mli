(** Small statistics helpers shared by the extractor (regularity scores),
    the report tables (geomean ratios) and the tests. *)

val mean : float array -> float
(** Arithmetic mean; 0 on an empty array. *)

val variance : float array -> float
(** Population variance; 0 on arrays shorter than 2. *)

val stddev : float array -> float

val median : float array -> float
(** Median of a copy (input untouched); 0 on an empty array. *)

val geomean : float array -> float
(** Geometric mean of positive values.
    @raise Invalid_argument if any value is non-positive. *)

val minimum : float array -> float
val maximum : float array -> float

val sum : float array -> float
(** Kahan-compensated sum. *)

val quantile : float array -> float -> float
(** [quantile a q] with [0 <= q <= 1], linear interpolation between order
    statistics. *)

val entropy : float array -> float
(** Shannon entropy (nats) of a nonnegative weight vector, normalised
    internally; zero-weight entries are skipped. *)

val pearson : float array -> float array -> float
(** Correlation coefficient; 0 when either side is constant. *)
