(* Splitmix64 seeds and splits; xoshiro256** generates.  Reimplemented from
   the public-domain reference code (Blackman & Vigna). *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let golden = 0x9E3779B97F4A7C15L

let splitmix64 state =
  let z = Int64.add !state golden in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tt = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Use two outputs of the parent as a fresh splitmix seed chain. *)
  let state = ref (bits64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let mask62 = 0x3FFFFFFFFFFFFFFFL

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on 62 bits to avoid modulo bias. *)
  let b = Int64.of_int bound in
  let rec draw () =
    let r = Int64.logand (bits64 t) mask62 in
    let v = Int64.rem r b in
    if Int64.sub r v > Int64.sub (Int64.add mask62 1L) b then draw () else Int64.to_int v
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let gaussian t ~mean ~stddev =
  let rec nonzero () =
    let u = float t 1.0 in
    if u <= 1e-300 then nonzero () else u
  in
  let u1 = nonzero () in
  let u2 = float t 1.0 in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (stddev *. r *. cos (2.0 *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  (* Partial Fisher–Yates over an index array: O(n) but simple and exact. *)
  let idx = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 k
