(** Wall-clock stage timers for the flow runtime breakdown (Table 4). *)

type t

val create : unit -> t

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t stage f] runs [f], accumulating its wall-clock duration under
    [stage].  Re-entrant per stage (durations add up).  Exceptions propagate
    after the duration is recorded. *)

val get : t -> string -> float
(** Accumulated seconds for a stage; 0 if never timed. *)

val total : t -> float
(** Sum over all stages. *)

val stages : t -> (string * float) list
(** Stages in first-recorded order with accumulated seconds. *)

val reset : t -> unit
