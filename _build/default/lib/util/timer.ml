type t = { tbl : (string, float) Hashtbl.t; mutable order : string list }

let create () = { tbl = Hashtbl.create 8; order = [] }

let record t stage dt =
  match Hashtbl.find_opt t.tbl stage with
  | Some acc -> Hashtbl.replace t.tbl stage (acc +. dt)
  | None ->
    Hashtbl.add t.tbl stage dt;
    t.order <- stage :: t.order

let time t stage f =
  let start = Unix.gettimeofday () in
  match f () with
  | result ->
    record t stage (Unix.gettimeofday () -. start);
    result
  | exception e ->
    record t stage (Unix.gettimeofday () -. start);
    raise e

let get t stage = Option.value ~default:0.0 (Hashtbl.find_opt t.tbl stage)

let total t = Hashtbl.fold (fun _ v acc -> acc +. v) t.tbl 0.0

let stages t = List.rev_map (fun s -> (s, get t s)) t.order

let reset t =
  Hashtbl.reset t.tbl;
  t.order <- []
