(** Deterministic, splittable pseudo-random number generator.

    All randomness in the repository flows through this module so that every
    benchmark, test and example is exactly reproducible from a single integer
    seed.  The generator is splitmix64 for stream derivation combined with
    xoshiro256** for bulk generation — both are public-domain algorithms
    reimplemented here because the container is sealed and [Random.State]
    offers no splitting. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed.  Equal seeds yield
    equal streams. *)

val split : t -> t
(** [split t] derives an independent child generator and advances [t].
    Children created in the same order are identical across runs. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box–Muller normal deviate. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct ints from
    [\[0, n)], in random order.  Requires [k <= n]. *)
