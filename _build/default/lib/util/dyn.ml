type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let push t v =
  if t.len = Array.length t.data then begin
    let ncap = if t.len = 0 then 16 else t.len * 2 in
    let nd = Array.make ncap v in
    Array.blit t.data 0 nd 0 t.len;
    t.data <- nd
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let check t i = if i < 0 || i >= t.len then invalid_arg "Dyn: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i v =
  check t i;
  t.data.(i) <- v

let to_array t = Array.sub t.data 0 t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let clear t = t.len <- 0

let of_array a = { data = Array.copy a; len = Array.length a }
