type problem = {
  n : int;
  eval : float array -> float;
  grad : float array -> float array -> unit;
}

type options = {
  max_iter : int;
  grad_tol : float;
  f_tol : float;
  initial_step : float;
  project : (float array -> unit) option;
  on_iterate : (int -> float -> float -> unit) option;
}

let default_options =
  {
    max_iter = 100;
    grad_tol = 1e-6;
    f_tol = 1e-9;
    initial_step = 1.0;
    project = None;
    on_iterate = None;
  }

type result = {
  x : float array;
  f : float;
  iterations : int;
  grad_norm : float;
  converged : bool;
  f_evals : int;
}

let minimize ?(options = default_options) p x0 =
  if Array.length x0 <> p.n then invalid_arg "Nlcg.minimize: x0 size mismatch";
  let x = Array.copy x0 in
  (match options.project with Some proj -> proj x | None -> ());
  let g = Array.make p.n 0.0 in
  let g_prev = Array.make p.n 0.0 in
  let d = Array.make p.n 0.0 in
  let scratch = Array.make p.n 0.0 in
  let f_evals = ref 0 in
  let eval x =
    incr f_evals;
    p.eval x
  in
  let f = ref (eval x) in
  p.grad x g;
  for i = 0 to p.n - 1 do
    d.(i) <- -.g.(i)
  done;
  let gnorm = ref (Vec.nrm_inf g) in
  let step_hint = ref options.initial_step in
  let iter = ref 0 in
  let converged = ref (!gnorm <= options.grad_tol) in
  let stalled = ref false in
  while (not !converged) && (not !stalled) && !iter < options.max_iter do
    let slope = Vec.dot g d in
    (* If CG produced an ascent direction, restart on steepest descent. *)
    let slope =
      if slope >= 0.0 then begin
        for i = 0 to p.n - 1 do
          d.(i) <- -.g.(i)
        done;
        Vec.dot g d
      end
      else slope
    in
    if slope >= 0.0 then stalled := true (* zero gradient, nothing to do *)
    else begin
      let ls =
        Linesearch.armijo ~f:eval ~x ~d ~f0:!f ~slope ~step0:!step_hint ~scratch ()
      in
      if not ls.Linesearch.ok then begin
        (* Retry once from steepest descent with a unit-scaled step. *)
        for i = 0 to p.n - 1 do
          d.(i) <- -.g.(i)
        done;
        let slope = Vec.dot g d in
        let ls2 =
          Linesearch.armijo ~f:eval ~x ~d ~f0:!f ~slope
            ~step0:(1.0 /. max 1.0 (Vec.nrm_inf g))
            ~scratch ()
        in
        if not ls2.Linesearch.ok then stalled := true
        else begin
          Vec.copy_into scratch x;
          (match options.project with Some proj -> proj x | None -> ());
          let f_old = !f in
          f := eval x;
          Vec.copy_into g g_prev;
          p.grad x g;
          for i = 0 to p.n - 1 do
            d.(i) <- -.g.(i)
          done;
          step_hint := max 1e-12 (2.0 *. ls2.Linesearch.step);
          gnorm := Vec.nrm_inf g;
          incr iter;
          (match options.on_iterate with Some cb -> cb !iter !f !gnorm | None -> ());
          if !gnorm <= options.grad_tol then converged := true
          else if
            abs_float (f_old -. !f) <= options.f_tol *. (abs_float f_old +. 1e-30)
          then converged := true
        end
      end
      else begin
        Vec.copy_into scratch x;
        (match options.project with Some proj -> proj x | None -> ());
        let f_old = !f in
        (* Projection may have moved the point; recompute f there only if a
           projection exists, otherwise reuse the line-search value. *)
        (match options.project with
        | Some _ -> f := eval x
        | None -> f := ls.Linesearch.f_new);
        Vec.copy_into g g_prev;
        p.grad x g;
        (* Polak–Ribière+ beta. *)
        let gg_prev = Vec.dot g_prev g_prev in
        let beta =
          if gg_prev <= 0.0 then 0.0
          else begin
            let num = ref 0.0 in
            for i = 0 to p.n - 1 do
              num := !num +. (g.(i) *. (g.(i) -. g_prev.(i)))
            done;
            max 0.0 (!num /. gg_prev)
          end
        in
        for i = 0 to p.n - 1 do
          d.(i) <- -.g.(i) +. (beta *. d.(i))
        done;
        step_hint := max 1e-12 (2.0 *. ls.Linesearch.step);
        gnorm := Vec.nrm_inf g;
        incr iter;
        (match options.on_iterate with Some cb -> cb !iter !f !gnorm | None -> ());
        if !gnorm <= options.grad_tol then converged := true
        else if abs_float (f_old -. !f) <= options.f_tol *. (abs_float f_old +. 1e-30) then
          converged := true
      end
    end
  done;
  { x; f = !f; iterations = !iter; grad_norm = !gnorm; converged = !converged; f_evals = !f_evals }
