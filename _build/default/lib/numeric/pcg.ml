type stats = { iterations : int; residual : float; converged : bool }

let solve_operator ?max_iter ?(tol = 1e-8) ?x0 ~n ~mul ~diag b =
  if Array.length b <> n || Array.length diag <> n then
    invalid_arg "Pcg.solve_operator: size mismatch";
  let max_iter = Option.value max_iter ~default:(2 * n) in
  let inv_diag = Array.map (fun d -> if d > 0.0 then 1.0 /. d else 1.0) diag in
  let x = match x0 with Some x0 -> Array.copy x0 | None -> Array.make n 0.0 in
  let r = Array.make n 0.0 in
  let z = Array.make n 0.0 in
  let p = Array.make n 0.0 in
  let ap = Array.make n 0.0 in
  (* r = b - A x *)
  mul x r;
  for i = 0 to n - 1 do
    r.(i) <- b.(i) -. r.(i)
  done;
  let norm_b = Vec.nrm2 b in
  let threshold = if norm_b > 0.0 then tol *. norm_b else tol in
  let apply_precond () =
    for i = 0 to n - 1 do
      z.(i) <- inv_diag.(i) *. r.(i)
    done
  in
  apply_precond ();
  Vec.copy_into z p;
  let rz = ref (Vec.dot r z) in
  let iter = ref 0 in
  let res = ref (Vec.nrm2 r) in
  while !res > threshold && !iter < max_iter do
    mul p ap;
    let pap = Vec.dot p ap in
    if pap <= 0.0 then begin
      (* Not SPD along p (numerical breakdown): stop with current iterate. *)
      iter := max_iter
    end
    else begin
      let alpha = !rz /. pap in
      Vec.axpy alpha p x;
      Vec.axpy (-.alpha) ap r;
      apply_precond ();
      let rz' = Vec.dot r z in
      let beta = rz' /. !rz in
      rz := rz';
      for i = 0 to n - 1 do
        p.(i) <- z.(i) +. (beta *. p.(i))
      done;
      res := Vec.nrm2 r;
      incr iter
    end
  done;
  x, { iterations = !iter; residual = !res; converged = !res <= threshold }

let solve ?max_iter ?tol ?x0 (a : Csr.t) b =
  if a.Csr.n_rows <> a.Csr.n_cols then invalid_arg "Pcg.solve: matrix not square";
  if Array.length b <> a.Csr.n_rows then invalid_arg "Pcg.solve: rhs size mismatch";
  solve_operator ?max_iter ?tol ?x0 ~n:a.Csr.n_rows
    ~mul:(fun x y -> Csr.mul a x y)
    ~diag:(Csr.diagonal a) b
