(** Compressed sparse row matrices, built from coordinate triplets.
    Duplicate entries are summed, which is exactly what assembling a
    placement Laplacian needs (each two-pin connection contributes to four
    entries). *)

type t = {
  n_rows : int;
  n_cols : int;
  row_off : int array;  (** length [n_rows + 1] *)
  col_idx : int array;
  values : float array;
}

module Triplets : sig
  type builder

  val create : rows:int -> cols:int -> builder
  val add : builder -> int -> int -> float -> unit
  (** [add b i j v] accumulates [v] at [(i, j)].
      @raise Invalid_argument on out-of-range indices. *)

  val to_csr : builder -> t
  (** Sorts, merges duplicates, drops explicit zeros. *)
end

val mul : t -> float array -> float array -> unit
(** [mul a x y] sets [y := A x].
    @raise Invalid_argument on dimension mismatch. *)

val diagonal : t -> float array
(** Main diagonal (zeros where absent). *)

val nnz : t -> int
val get : t -> int -> int -> float
(** Entry lookup (binary search within the row). *)

val is_symmetric : ?tol:float -> t -> bool
val transpose : t -> t
