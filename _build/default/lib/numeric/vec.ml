let check_len a b name = if Array.length a <> Array.length b then invalid_arg name

let dot x y =
  check_len x y "Vec.dot";
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let nrm2 x = sqrt (dot x x)

let nrm_inf x =
  let m = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let a = abs_float x.(i) in
    if a > !m then m := a
  done;
  !m

let axpy a x y =
  check_len x y "Vec.axpy";
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let scale a x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- a *. x.(i)
  done

let copy_into src dst =
  check_len src dst "Vec.copy_into";
  Array.blit src 0 dst 0 (Array.length src)

let fill x v = Array.fill x 0 (Array.length x) v

let add_into x y =
  check_len x y "Vec.add_into";
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. x.(i)
  done

let sub x y =
  check_len x y "Vec.sub";
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let max_abs_diff x y =
  check_len x y "Vec.max_abs_diff";
  let m = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let d = abs_float (x.(i) -. y.(i)) in
    if d > !m then m := d
  done;
  !m
