type t = {
  n_rows : int;
  n_cols : int;
  row_off : int array;
  col_idx : int array;
  values : float array;
}

module Triplets = struct
  type builder = {
    rows : int;
    cols : int;
    ri : int Dpp_util.Dyn.t;
    ci : int Dpp_util.Dyn.t;
    v : float Dpp_util.Dyn.t;
  }

  let create ~rows ~cols =
    {
      rows;
      cols;
      ri = Dpp_util.Dyn.create ();
      ci = Dpp_util.Dyn.create ();
      v = Dpp_util.Dyn.create ();
    }

  let add b i j v =
    if i < 0 || i >= b.rows || j < 0 || j >= b.cols then
      invalid_arg "Csr.Triplets.add: index out of range";
    Dpp_util.Dyn.push b.ri i;
    Dpp_util.Dyn.push b.ci j;
    Dpp_util.Dyn.push b.v v

  let to_csr b =
    let n = Dpp_util.Dyn.length b.v in
    let ri = Dpp_util.Dyn.to_array b.ri in
    let ci = Dpp_util.Dyn.to_array b.ci in
    let v = Dpp_util.Dyn.to_array b.v in
    (* Counting sort by row, then sort each row segment by column and merge. *)
    let counts = Array.make (b.rows + 1) 0 in
    for k = 0 to n - 1 do
      counts.(ri.(k) + 1) <- counts.(ri.(k) + 1) + 1
    done;
    for i = 0 to b.rows - 1 do
      counts.(i + 1) <- counts.(i + 1) + counts.(i)
    done;
    let perm = Array.make n 0 in
    let cursor = Array.copy counts in
    for k = 0 to n - 1 do
      perm.(cursor.(ri.(k))) <- k;
      cursor.(ri.(k)) <- cursor.(ri.(k)) + 1
    done;
    let row_off = Array.make (b.rows + 1) 0 in
    let col_acc = Dpp_util.Dyn.create () in
    let val_acc = Dpp_util.Dyn.create () in
    for i = 0 to b.rows - 1 do
      let lo = counts.(i) and hi = counts.(i + 1) in
      let seg = Array.sub perm lo (hi - lo) in
      Array.sort (fun a bk -> compare ci.(a) ci.(bk)) seg;
      let k = ref 0 in
      let m = Array.length seg in
      while !k < m do
        let j = ci.(seg.(!k)) in
        let acc = ref 0.0 in
        while !k < m && ci.(seg.(!k)) = j do
          acc := !acc +. v.(seg.(!k));
          incr k
        done;
        if !acc <> 0.0 then begin
          Dpp_util.Dyn.push col_acc j;
          Dpp_util.Dyn.push val_acc !acc
        end
      done;
      row_off.(i + 1) <- Dpp_util.Dyn.length val_acc
    done;
    {
      n_rows = b.rows;
      n_cols = b.cols;
      row_off;
      col_idx = Dpp_util.Dyn.to_array col_acc;
      values = Dpp_util.Dyn.to_array val_acc;
    }
end

let mul a x y =
  if Array.length x <> a.n_cols || Array.length y <> a.n_rows then
    invalid_arg "Csr.mul: dimension mismatch";
  for i = 0 to a.n_rows - 1 do
    let acc = ref 0.0 in
    for k = a.row_off.(i) to a.row_off.(i + 1) - 1 do
      acc := !acc +. (a.values.(k) *. x.(a.col_idx.(k)))
    done;
    y.(i) <- !acc
  done

let diagonal a =
  let d = Array.make (min a.n_rows a.n_cols) 0.0 in
  for i = 0 to Array.length d - 1 do
    for k = a.row_off.(i) to a.row_off.(i + 1) - 1 do
      if a.col_idx.(k) = i then d.(i) <- a.values.(k)
    done
  done;
  d

let nnz a = Array.length a.values

let get a i j =
  let lo = ref a.row_off.(i) and hi = ref (a.row_off.(i + 1) - 1) in
  let result = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = a.col_idx.(mid) in
    if c = j then begin
      result := a.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let transpose a =
  let b = Triplets.create ~rows:a.n_cols ~cols:a.n_rows in
  for i = 0 to a.n_rows - 1 do
    for k = a.row_off.(i) to a.row_off.(i + 1) - 1 do
      Triplets.add b a.col_idx.(k) i a.values.(k)
    done
  done;
  Triplets.to_csr b

let is_symmetric ?(tol = 1e-9) a =
  if a.n_rows <> a.n_cols then false
  else begin
    let ok = ref true in
    for i = 0 to a.n_rows - 1 do
      for k = a.row_off.(i) to a.row_off.(i + 1) - 1 do
        let j = a.col_idx.(k) in
        if abs_float (a.values.(k) -. get a j i) > tol then ok := false
      done
    done;
    !ok
  end
