(** Jacobi-preconditioned conjugate gradient for symmetric positive-definite
    systems — the initial quadratic placement solver. *)

type stats = { iterations : int; residual : float; converged : bool }

val solve :
  ?max_iter:int ->
  ?tol:float ->
  ?x0:float array ->
  Csr.t ->
  float array ->
  float array * stats
(** [solve a b] returns an approximate solution of [A x = b].

    [tol] is relative: iteration stops when [||r|| <= tol * ||b||]
    (default [1e-8]).  [max_iter] defaults to [2 * n].  [x0] seeds the
    iterate (default zero) and is not modified.

    @raise Invalid_argument if [a] is not square or sizes mismatch. *)

val solve_operator :
  ?max_iter:int ->
  ?tol:float ->
  ?x0:float array ->
  n:int ->
  mul:(float array -> float array -> unit) ->
  diag:float array ->
  float array ->
  float array * stats
(** Matrix-free variant: [mul x y] must set [y := A x]; [diag] is the
    preconditioner diagonal (entries [<= 0] are treated as 1). *)
