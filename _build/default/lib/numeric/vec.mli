(** Dense float-array vector kernels for the placement optimizers.  All
    operations are in-place where a destination is given; nothing allocates
    inside the solver loops. *)

val dot : float array -> float array -> float
val nrm2 : float array -> float
val nrm_inf : float array -> float

val axpy : float -> float array -> float array -> unit
(** [axpy a x y] sets [y := a*x + y]. *)

val scale : float -> float array -> unit
val copy_into : float array -> float array -> unit
(** [copy_into src dst]. *)

val fill : float array -> float -> unit
val add_into : float array -> float array -> unit
(** [add_into x y] sets [y := y + x]. *)

val sub : float array -> float array -> float array
(** Fresh [x - y]. *)

val max_abs_diff : float array -> float array -> float
