(** Backtracking Armijo line search used by the nonlinear CG optimizer. *)

type result = { step : float; f_new : float; evaluations : int; ok : bool }

val armijo :
  ?c1:float ->
  ?shrink:float ->
  ?max_trials:int ->
  f:(float array -> float) ->
  x:float array ->
  d:float array ->
  f0:float ->
  slope:float ->
  step0:float ->
  scratch:float array ->
  unit ->
  result
(** Find [t] with [f(x + t d) <= f0 + c1 t slope], starting at [step0] and
    multiplying by [shrink] (default 0.5) up to [max_trials] (default 30)
    times; after the first acceptable step the search keeps shrinking while
    that strictly improves the value (guarding against accepted
    valley-overshooting steps that merely graze the Armijo bound).  [slope] must be the directional derivative [g . d] (negative for
    a descent direction).  [scratch] must have the same length as [x]; it
    holds the trial point to avoid allocation and contains [x + t d] for the
    returned [t] on success.  [ok = false] means no acceptable step was
    found; [step] is then 0 and [scratch] equals [x]. *)
