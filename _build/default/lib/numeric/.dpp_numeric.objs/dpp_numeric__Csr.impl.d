lib/numeric/csr.ml: Array Dpp_util
