lib/numeric/nlcg.mli:
