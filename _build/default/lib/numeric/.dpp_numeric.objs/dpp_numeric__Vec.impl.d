lib/numeric/vec.ml: Array
