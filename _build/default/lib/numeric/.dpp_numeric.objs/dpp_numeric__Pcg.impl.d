lib/numeric/pcg.ml: Array Csr Option Vec
