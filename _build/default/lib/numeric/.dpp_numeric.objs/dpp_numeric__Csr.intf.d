lib/numeric/csr.mli:
