lib/numeric/vec.mli:
