lib/numeric/pcg.mli: Csr
