lib/numeric/linesearch.ml: Array Float Vec
