lib/numeric/linesearch.mli:
