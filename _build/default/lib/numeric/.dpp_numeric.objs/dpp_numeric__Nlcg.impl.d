lib/numeric/nlcg.ml: Array Linesearch Vec
