(** Axis-aligned rectangles: cell shapes, group bounding boxes, the die. *)

type t = { xl : float; yl : float; xh : float; yh : float }

val make : xl:float -> yl:float -> xh:float -> yh:float -> t
(** Normalises so that [xl <= xh] and [yl <= yh]. *)

val of_center : cx:float -> cy:float -> w:float -> h:float -> t
val width : t -> float
val height : t -> float
val area : t -> float
val center_x : t -> float
val center_y : t -> float
val center : t -> Point.t
val contains_point : t -> Point.t -> bool
val contains_rect : t -> t -> bool
(** [contains_rect outer inner]. *)

val overlaps : t -> t -> bool
(** Positive-area overlap. *)

val intersection : t -> t -> t option
val overlap_area : t -> t -> float
val hull : t -> t -> t
val expand : t -> float -> t
(** Grow (or shrink, if negative) each side by a margin. *)

val translate : t -> dx:float -> dy:float -> t
val clamp_inside : outer:t -> t -> t
(** Slide a rectangle the minimum distance so it lies inside [outer]; if it
    is larger than [outer] along an axis it is left-aligned on that axis. *)

val x_interval : t -> Interval.t
val y_interval : t -> Interval.t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
