type t = { lo : float; hi : float }

let make a b = if a <= b then { lo = a; hi = b } else { lo = b; hi = a }
let length t = t.hi -. t.lo
let contains t x = t.lo <= x && x <= t.hi
let overlaps a b = a.lo < b.hi && b.lo < a.hi

let intersection a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo <= hi then Some { lo; hi } else None

let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let overlap_length a b = max 0.0 (min a.hi b.hi -. max a.lo b.lo)

let clamp t x = if x < t.lo then t.lo else if x > t.hi then t.hi else x

let shift t d = { lo = t.lo +. d; hi = t.hi +. d }

let equal a b = a.lo = b.lo && a.hi = b.hi

let pp ppf t = Format.fprintf ppf "[%g, %g]" t.lo t.hi
