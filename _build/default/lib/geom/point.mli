(** 2-D points in placement coordinates (floats; the database unit is
    arbitrary, the generator uses 1.0 = one site width). *)

type t = { x : float; y : float }

val make : float -> float -> t
val zero : t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val dot : t -> t -> float
val norm : t -> float
(** Euclidean norm. *)

val dist : t -> t -> float
(** Euclidean distance. *)

val manhattan : t -> t -> float
(** L1 distance — the wirelength metric of record in placement. *)

val midpoint : t -> t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
(** Lexicographic by x then y. *)

val pp : Format.formatter -> t -> unit
