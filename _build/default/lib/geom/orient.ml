type t = N | S | E | W | FN | FS | FE | FW

let all = [ N; S; E; W; FN; FS; FE; FW ]

let to_string = function
  | N -> "N"
  | S -> "S"
  | E -> "E"
  | W -> "W"
  | FN -> "FN"
  | FS -> "FS"
  | FE -> "FE"
  | FW -> "FW"

let of_string = function
  | "N" -> Some N
  | "S" -> Some S
  | "E" -> Some E
  | "W" -> Some W
  | "FN" -> Some FN
  | "FS" -> Some FS
  | "FE" -> Some FE
  | "FW" -> Some FW
  | _ -> None

let flip_x = function
  | N -> FN
  | FN -> N
  | S -> FS
  | FS -> S
  | E -> FE
  | FE -> E
  | W -> FW
  | FW -> W

let flip_y = function
  | N -> FS
  | FS -> N
  | S -> FN
  | FN -> S
  | E -> FW
  | FW -> E
  | W -> FE
  | FE -> W

let rotate90 = function
  | N -> W
  | W -> S
  | S -> E
  | E -> N
  | FN -> FW
  | FW -> FS
  | FS -> FE
  | FE -> FN

let swaps_dimensions = function
  | E | W | FE | FW -> true
  | N | S | FN | FS -> false

let apply o ~w ~h = if swaps_dimensions o then h, w else w, h

let apply_offset o ~w ~h (dx, dy) =
  (* Offsets are measured from the lower-left corner of the oriented box. *)
  match o with
  | N -> dx, dy
  | FN -> w -. dx, dy
  | S -> w -. dx, h -. dy
  | FS -> dx, h -. dy
  | E -> dy, w -. dx
  | FE -> dy, dx
  | W -> h -. dy, dx
  | FW -> h -. dy, w -. dx

let equal (a : t) b = a = b

let pp ppf o = Format.pp_print_string ppf (to_string o)
