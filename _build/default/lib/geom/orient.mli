(** Cell orientations, LEF/DEF style.  Standard cells in this flow only use
    [N] and [FN] (row flipping for rail alignment), but the full set is
    modelled so mixed-size extensions stay honest. *)

type t = N | S | E | W | FN | FS | FE | FW

val all : t list
val to_string : t -> string
val of_string : string -> t option
val flip_x : t -> t
(** Mirror about the y axis. *)

val flip_y : t -> t
(** Mirror about the x axis. *)

val rotate90 : t -> t
(** Counter-clockwise quarter turn. *)

val swaps_dimensions : t -> bool
(** Whether width/height exchange under this orientation. *)

val apply : t -> w:float -> h:float -> float * float
(** Oriented bounding-box dimensions. *)

val apply_offset : t -> w:float -> h:float -> float * float -> float * float
(** Transform a pin offset given relative to the [N]-oriented cell origin
    into the oriented cell's frame. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
