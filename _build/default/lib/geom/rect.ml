type t = { xl : float; yl : float; xh : float; yh : float }

let make ~xl ~yl ~xh ~yh =
  let xl, xh = if xl <= xh then xl, xh else xh, xl in
  let yl, yh = if yl <= yh then yl, yh else yh, yl in
  { xl; yl; xh; yh }

let of_center ~cx ~cy ~w ~h =
  make ~xl:(cx -. (w /. 2.0)) ~yl:(cy -. (h /. 2.0)) ~xh:(cx +. (w /. 2.0)) ~yh:(cy +. (h /. 2.0))

let width t = t.xh -. t.xl
let height t = t.yh -. t.yl
let area t = width t *. height t
let center_x t = (t.xl +. t.xh) /. 2.0
let center_y t = (t.yl +. t.yh) /. 2.0
let center t = Point.make (center_x t) (center_y t)

let contains_point t (p : Point.t) = t.xl <= p.x && p.x <= t.xh && t.yl <= p.y && p.y <= t.yh

let contains_rect outer inner =
  outer.xl <= inner.xl && inner.xh <= outer.xh && outer.yl <= inner.yl && inner.yh <= outer.yh

let overlaps a b = a.xl < b.xh && b.xl < a.xh && a.yl < b.yh && b.yl < a.yh

let intersection a b =
  let xl = max a.xl b.xl and xh = min a.xh b.xh in
  let yl = max a.yl b.yl and yh = min a.yh b.yh in
  if xl <= xh && yl <= yh then Some { xl; yl; xh; yh } else None

let overlap_area a b =
  let w = min a.xh b.xh -. max a.xl b.xl in
  let h = min a.yh b.yh -. max a.yl b.yl in
  if w > 0.0 && h > 0.0 then w *. h else 0.0

let hull a b = { xl = min a.xl b.xl; yl = min a.yl b.yl; xh = max a.xh b.xh; yh = max a.yh b.yh }

let expand t m = make ~xl:(t.xl -. m) ~yl:(t.yl -. m) ~xh:(t.xh +. m) ~yh:(t.yh +. m)

let translate t ~dx ~dy = { xl = t.xl +. dx; yl = t.yl +. dy; xh = t.xh +. dx; yh = t.yh +. dy }

let clamp_axis ~olo ~ohi lo hi =
  (* Returns the shift to apply along one axis. *)
  if hi -. lo > ohi -. olo then olo -. lo
  else if lo < olo then olo -. lo
  else if hi > ohi then ohi -. hi
  else 0.0

let clamp_inside ~outer t =
  let dx = clamp_axis ~olo:outer.xl ~ohi:outer.xh t.xl t.xh in
  let dy = clamp_axis ~olo:outer.yl ~ohi:outer.yh t.yl t.yh in
  translate t ~dx ~dy

let x_interval t = Interval.make t.xl t.xh
let y_interval t = Interval.make t.yl t.yh

let equal a b = a.xl = b.xl && a.yl = b.yl && a.xh = b.xh && a.yh = b.yh

let pp ppf t = Format.fprintf ppf "[%g, %g]x[%g, %g]" t.xl t.xh t.yl t.yh
