type t = { x : float; y : float }

let make x y = { x; y }
let zero = { x = 0.0; y = 0.0 }
let add a b = { x = a.x +. b.x; y = a.y +. b.y }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y }
let scale k p = { x = k *. p.x; y = k *. p.y }
let dot a b = (a.x *. b.x) +. (a.y *. b.y)
let norm p = sqrt (dot p p)
let dist a b = norm (sub a b)
let manhattan a b = abs_float (a.x -. b.x) +. abs_float (a.y -. b.y)
let midpoint a b = { x = (a.x +. b.x) /. 2.0; y = (a.y +. b.y) /. 2.0 }
let equal a b = a.x = b.x && a.y = b.y

let compare a b =
  let c = Float.compare a.x b.x in
  if c <> 0 then c else Float.compare a.y b.y

let pp ppf p = Format.fprintf ppf "(%g, %g)" p.x p.y
