(** Closed 1-D intervals, used for row occupancy bookkeeping in the
    legalizers and for bin ranges in the density grid. *)

type t = { lo : float; hi : float }

val make : float -> float -> t
(** Normalises so that [lo <= hi]. *)

val length : t -> float
val contains : t -> float -> bool
val overlaps : t -> t -> bool
(** Positive-measure overlap (touching endpoints do not overlap). *)

val intersection : t -> t -> t option
val hull : t -> t -> t
val overlap_length : t -> t -> float
(** Length of the intersection, 0 when disjoint. *)

val clamp : t -> float -> float
(** Nearest point of the interval. *)

val shift : t -> float -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
