lib/geom/orient.ml: Format
