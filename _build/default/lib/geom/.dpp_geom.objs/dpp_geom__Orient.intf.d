lib/geom/orient.mli: Format
