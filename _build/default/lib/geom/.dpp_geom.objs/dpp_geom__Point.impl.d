lib/geom/point.ml: Float Format
