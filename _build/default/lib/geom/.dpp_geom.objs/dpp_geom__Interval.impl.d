lib/geom/interval.ml: Format
