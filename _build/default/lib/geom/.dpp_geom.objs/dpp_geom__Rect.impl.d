lib/geom/rect.ml: Format Interval Point
