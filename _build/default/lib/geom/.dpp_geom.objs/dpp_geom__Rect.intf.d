lib/geom/rect.mli: Format Interval Point
