lib/geom/interval.mli: Format
