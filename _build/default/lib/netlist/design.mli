(** A placed (or placeable) design: netlist entities plus die geometry and
    the mutable coordinate state the placer works on.

    Coordinates [x.(i), y.(i)] are the {e lower-left corner} of cell [i].
    Pin absolute positions are derived through the cell orientation. *)

type t = {
  name : string;
  die : Dpp_geom.Rect.t;
  row_height : float;
  site_width : float;
  num_rows : int;
  cells : Types.cell array;
  nets : Types.net array;
  pins : Types.pin array;
  x : float array;  (** cell lower-left x, indexed by cell id *)
  y : float array;  (** cell lower-left y *)
  orient : Dpp_geom.Orient.t array;
  groups : Groups.t list;  (** ground-truth or extracted datapath groups *)
}

val num_cells : t -> int
val num_nets : t -> int
val num_pins : t -> int
val cell : t -> int -> Types.cell
val net : t -> int -> Types.net
val pin : t -> int -> Types.pin

val cell_rect : t -> int -> Dpp_geom.Rect.t
(** Bounding box of cell [i] at its current position and orientation. *)

val cell_center_x : t -> int -> float
val cell_center_y : t -> int -> float

val set_center : t -> int -> float -> float -> unit
(** Move cell [i] so its center lands at the given point. *)

val pin_position : t -> int -> float * float
(** Absolute position of pin [i] given its cell's placement. *)

val row_y : t -> int -> float
(** Lower edge of row [r]. *)

val row_of_y : t -> float -> int
(** Index of the row whose span contains [y], clamped to valid rows. *)

val movable_ids : t -> int array
(** Ids of all movable cells, ascending. *)

val fixed_ids : t -> int array

val movable_area : t -> float
val fixed_core_area : t -> float
(** Area of fixed cells (pads excluded) clipped to the die. *)

val utilization : t -> float
(** movable area / (die area - fixed core area). *)

val copy_positions : t -> float array * float array
val restore_positions : t -> float array -> float array -> unit

val with_groups : t -> Groups.t list -> t
(** Functional update of the group annotation list. *)

val total_pin_count : t -> int
val average_net_degree : t -> float
