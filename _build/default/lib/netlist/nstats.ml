type t = {
  s_name : string;
  s_cells : int;
  s_movable : int;
  s_fixed : int;
  s_pads : int;
  s_nets : int;
  s_pins : int;
  s_avg_net_degree : float;
  s_max_net_degree : int;
  s_datapath_cells : int;
  s_datapath_fraction : float;
  s_num_groups : int;
  s_utilization : float;
  s_rows : int;
}

let compute (d : Design.t) =
  let movable = ref 0 and fixed = ref 0 and pads = ref 0 in
  Array.iter
    (fun (c : Types.cell) ->
      match c.c_kind with
      | Types.Movable -> incr movable
      | Types.Fixed -> incr fixed
      | Types.Pad -> incr pads)
    d.Design.cells;
  let max_deg =
    Array.fold_left (fun m (n : Types.net) -> max m (Array.length n.n_pins)) 0 d.Design.nets
  in
  let dp_cells =
    let seen = Hashtbl.create 256 in
    List.iter
      (fun g -> Array.iter (fun c -> Hashtbl.replace seen c ()) (Groups.cell_ids g))
      d.Design.groups;
    Hashtbl.length seen
  in
  {
    s_name = d.Design.name;
    s_cells = Design.num_cells d;
    s_movable = !movable;
    s_fixed = !fixed;
    s_pads = !pads;
    s_nets = Design.num_nets d;
    s_pins = Design.num_pins d;
    s_avg_net_degree = Design.average_net_degree d;
    s_max_net_degree = max_deg;
    s_datapath_cells = dp_cells;
    s_datapath_fraction =
      (if !movable = 0 then 0.0 else float_of_int dp_cells /. float_of_int !movable);
    s_num_groups = List.length d.Design.groups;
    s_utilization = Design.utilization d;
    s_rows = d.Design.num_rows;
  }

let header =
  [
    "design"; "#cells"; "#movable"; "#fixed"; "#pads"; "#nets"; "#pins"; "avg-deg"; "max-deg";
    "#dp-cells"; "dp-frac"; "#groups"; "util"; "#rows";
  ]

let to_row s =
  [
    s.s_name;
    string_of_int s.s_cells;
    string_of_int s.s_movable;
    string_of_int s.s_fixed;
    string_of_int s.s_pads;
    string_of_int s.s_nets;
    string_of_int s.s_pins;
    Printf.sprintf "%.2f" s.s_avg_net_degree;
    string_of_int s.s_max_net_degree;
    string_of_int s.s_datapath_cells;
    Printf.sprintf "%.2f" s.s_datapath_fraction;
    string_of_int s.s_num_groups;
    Printf.sprintf "%.3f" s.s_utilization;
    string_of_int s.s_rows;
  ]

let pp ppf s =
  Format.fprintf ppf "%s: %d cells (%d movable), %d nets, %d pins, dp-frac %.2f, util %.3f"
    s.s_name s.s_cells s.s_movable s.s_nets s.s_pins s.s_datapath_fraction s.s_utilization
