(** Bookshelf-format I/O (UCLA placement benchmark format: .aux, .nodes,
    .nets, .pl, .scl), plus two extensions this project needs and the
    vanilla format cannot carry:

    - [.masters]: one "cellname master" line per cell, so the extractor's
      signature refinement survives a round trip;
    - [.groups]: ground-truth datapath groups, one header line
      "Group name slices stages" followed by slice rows of cell names with
      "-" for holes.

    Pin offsets follow Bookshelf convention (relative to the cell {e
    center}); the in-memory model uses lower-left offsets, converted on the
    way in and out.  Pin directions map to Bookshelf's [I]/[O]/[B].

    Files are written alongside a common base path: [write d ~basename:"foo"]
    produces [foo.aux], [foo.nodes], ...

    Known format limitation: pins exist only as net members in Bookshelf,
    so {e unconnected} pins are not representable and disappear on a round
    trip (cells, nets, placements and groups survive exactly). *)

exception Parse_error of string
(** Raised with a "file:line: message" payload on malformed input. *)

val write : Design.t -> basename:string -> unit

val read : basename:string -> Design.t
(** Reads [basename.aux] and every file it references.
    @raise Parse_error on malformed input
    @raise Sys_error if a file is missing *)
