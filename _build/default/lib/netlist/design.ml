module Rect = Dpp_geom.Rect
module Orient = Dpp_geom.Orient

type t = {
  name : string;
  die : Rect.t;
  row_height : float;
  site_width : float;
  num_rows : int;
  cells : Types.cell array;
  nets : Types.net array;
  pins : Types.pin array;
  x : float array;
  y : float array;
  orient : Orient.t array;
  groups : Groups.t list;
}

let num_cells t = Array.length t.cells
let num_nets t = Array.length t.nets
let num_pins t = Array.length t.pins
let cell t i = t.cells.(i)
let net t i = t.nets.(i)
let pin t i = t.pins.(i)

let cell_rect t i =
  let c = t.cells.(i) in
  let w, h = Orient.apply t.orient.(i) ~w:c.Types.c_width ~h:c.Types.c_height in
  Rect.make ~xl:t.x.(i) ~yl:t.y.(i) ~xh:(t.x.(i) +. w) ~yh:(t.y.(i) +. h)

let oriented_dims t i =
  let c = t.cells.(i) in
  Orient.apply t.orient.(i) ~w:c.Types.c_width ~h:c.Types.c_height

let cell_center_x t i =
  let w, _ = oriented_dims t i in
  t.x.(i) +. (w /. 2.0)

let cell_center_y t i =
  let _, h = oriented_dims t i in
  t.y.(i) +. (h /. 2.0)

let set_center t i cx cy =
  let w, h = oriented_dims t i in
  t.x.(i) <- cx -. (w /. 2.0);
  t.y.(i) <- cy -. (h /. 2.0)

let pin_position t i =
  let p = t.pins.(i) in
  let ci = p.Types.p_cell in
  let c = t.cells.(ci) in
  let dx, dy =
    Orient.apply_offset t.orient.(ci) ~w:c.Types.c_width ~h:c.Types.c_height
      (p.Types.p_dx, p.Types.p_dy)
  in
  t.x.(ci) +. dx, t.y.(ci) +. dy

let row_y t r = t.die.Rect.yl +. (float_of_int r *. t.row_height)

let row_of_y t y =
  let r = int_of_float (floor ((y -. t.die.Rect.yl) /. t.row_height)) in
  max 0 (min (t.num_rows - 1) r)

let ids_with_pred t pred =
  let acc = ref [] in
  for i = num_cells t - 1 downto 0 do
    if pred t.cells.(i).Types.c_kind then acc := i :: !acc
  done;
  Array.of_list !acc

let movable_ids t = ids_with_pred t (fun k -> not (Types.is_fixed_kind k))
let fixed_ids t = ids_with_pred t Types.is_fixed_kind

let movable_area t =
  Array.fold_left
    (fun acc (c : Types.cell) ->
      if Types.is_fixed_kind c.Types.c_kind then acc
      else acc +. (c.Types.c_width *. c.Types.c_height))
    0.0 t.cells

let fixed_core_area t =
  let acc = ref 0.0 in
  Array.iter
    (fun (c : Types.cell) ->
      match c.Types.c_kind with
      | Types.Fixed -> acc := !acc +. Rect.overlap_area t.die (cell_rect t c.Types.c_id)
      | Types.Pad | Types.Movable -> ())
    t.cells;
  !acc

let utilization t =
  let free = Rect.area t.die -. fixed_core_area t in
  if free <= 0.0 then infinity else movable_area t /. free

let copy_positions t = Array.copy t.x, Array.copy t.y

let restore_positions t x y =
  Array.blit x 0 t.x 0 (Array.length x);
  Array.blit y 0 t.y 0 (Array.length y)

let with_groups t groups = { t with groups }

let total_pin_count t = Array.length t.pins

let average_net_degree t =
  if num_nets t = 0 then 0.0
  else begin
    let acc = ref 0 in
    Array.iter (fun (n : Types.net) -> acc := !acc + Array.length n.Types.n_pins) t.nets;
    float_of_int !acc /. float_of_int (num_nets t)
  end
