module Rect = Dpp_geom.Rect

type severity = Warning | Error

type issue = { severity : severity; message : string }

let issue severity fmt = Printf.ksprintf (fun message -> { severity; message }) fmt

let check_references d acc =
  let acc = ref acc in
  let nc = Design.num_cells d and nn = Design.num_nets d and np = Design.num_pins d in
  Array.iter
    (fun (p : Types.pin) ->
      if p.p_cell < 0 || p.p_cell >= nc then
        acc := issue Error "pin %d references bad cell %d" p.p_id p.p_cell :: !acc
      else begin
        let c = Design.cell d p.p_cell in
        if not (Array.exists (fun q -> q = p.p_id) c.c_pins) then
          acc := issue Error "pin %d missing from cell %s pin list" p.p_id c.c_name :: !acc
      end;
      if p.p_net >= nn then acc := issue Error "pin %d references bad net %d" p.p_id p.p_net :: !acc;
      if p.p_net < 0 then acc := issue Warning "pin %d is unconnected" p.p_id :: !acc)
    d.Design.pins;
  Array.iter
    (fun (n : Types.net) ->
      Array.iter
        (fun p ->
          if p < 0 || p >= np then
            acc := issue Error "net %s references bad pin %d" n.n_name p :: !acc
          else if (Design.pin d p).p_net <> n.n_id then
            acc := issue Error "net %s lists pin %d owned by another net" n.n_name p :: !acc)
        n.n_pins)
    d.Design.nets;
  !acc

let check_net_degrees d acc =
  Array.fold_left
    (fun acc (n : Types.net) ->
      match Array.length n.n_pins with
      | 0 -> issue Error "net %s has no pins" n.n_name :: acc
      | 1 -> issue Warning "net %s has a single pin" n.n_name :: acc
      | _ -> acc)
    acc d.Design.nets

let check_names d acc =
  let seen = Hashtbl.create (Design.num_cells d) in
  Array.fold_left
    (fun acc (c : Types.cell) ->
      if Hashtbl.mem seen c.c_name then issue Error "duplicate cell name %s" c.c_name :: acc
      else begin
        Hashtbl.add seen c.c_name ();
        acc
      end)
    acc d.Design.cells

let check_geometry d acc =
  let die = d.Design.die in
  Array.fold_left
    (fun acc (c : Types.cell) ->
      let acc =
        if Types.is_fixed_kind c.c_kind then begin
          let r = Design.cell_rect d c.c_id in
          if not (Rect.overlaps r (Rect.expand die 1e-9)) && not (Rect.contains_rect die r) then
            issue Warning "fixed cell %s lies outside the die" c.c_name :: acc
          else acc
        end
        else acc
      in
      match c.c_kind with
      | Types.Movable ->
        let acc =
          if c.c_width > Rect.width die then
            issue Error "movable cell %s wider than the die" c.c_name :: acc
          else acc
        in
        (* multi-row movable macros are allowed when row-aligned in height *)
        let rows = c.c_height /. d.Design.row_height in
        if c.c_height > Rect.height die then
          issue Error "movable cell %s taller than the die" c.c_name :: acc
        else if abs_float (rows -. Float.round rows) > 1e-6 then
          issue Error "movable cell %s height is not a row multiple" c.c_name :: acc
        else acc
      | Types.Fixed | Types.Pad -> acc)
    acc d.Design.cells

let check_utilization d acc =
  let u = Design.utilization d in
  if u > 1.0 then issue Error "utilization %.3f exceeds capacity" u :: acc
  else if u > 0.95 then issue Warning "utilization %.3f is very high" u :: acc
  else acc

let check_groups d acc =
  let nc = Design.num_cells d in
  let owner = Hashtbl.create 64 in
  List.fold_left
    (fun acc g ->
      Array.fold_left
        (fun acc row ->
          Array.fold_left
            (fun acc c ->
              if c < 0 then acc
              else if c >= nc then
                issue Error "group %s references bad cell %d" g.Groups.g_name c :: acc
              else begin
                let acc =
                  if Types.is_fixed_kind (Design.cell d c).c_kind then
                    issue Error "group %s contains fixed cell %d" g.Groups.g_name c :: acc
                  else acc
                in
                match Hashtbl.find_opt owner c with
                | Some other when other <> g.Groups.g_name ->
                  issue Error "cell %d is in groups %s and %s" c other g.Groups.g_name :: acc
                | Some _ -> issue Error "cell %d appears twice in group %s" c g.Groups.g_name :: acc
                | None ->
                  Hashtbl.add owner c g.Groups.g_name;
                  acc
              end)
            acc row)
        acc g.Groups.g_rows)
    acc d.Design.groups

let check d =
  []
  |> check_references d
  |> check_net_degrees d
  |> check_names d
  |> check_geometry d
  |> check_utilization d
  |> check_groups d
  |> List.rev

let errors issues = List.filter (fun i -> i.severity = Error) issues

let is_clean issues = errors issues = []

let pp_issue ppf i =
  let tag = match i.severity with Warning -> "warning" | Error -> "error" in
  Format.fprintf ppf "[%s] %s" tag i.message
