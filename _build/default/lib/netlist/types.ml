type direction = Input | Output | Inout

type cell_kind = Movable | Fixed | Pad

type cell = {
  c_id : int;
  c_name : string;
  c_master : string;
  c_width : float;
  c_height : float;
  c_kind : cell_kind;
  c_pins : int array;
}

type net = { n_id : int; n_name : string; n_weight : float; n_pins : int array }

type pin = {
  p_id : int;
  p_cell : int;
  p_net : int;
  p_dir : direction;
  p_dx : float;
  p_dy : float;
}

let direction_to_string = function Input -> "I" | Output -> "O" | Inout -> "B"

let direction_of_string = function
  | "I" | "input" -> Some Input
  | "O" | "output" -> Some Output
  | "B" | "inout" -> Some Inout
  | _ -> None

let cell_kind_to_string = function Movable -> "movable" | Fixed -> "fixed" | Pad -> "pad"

let is_fixed_kind = function Fixed | Pad -> true | Movable -> false
