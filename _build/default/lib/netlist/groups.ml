type t = { g_name : string; g_rows : int array array }

let make name rows =
  let n = Array.length rows in
  if n = 0 then invalid_arg "Groups.make: no slices";
  let stages = Array.length rows.(0) in
  if stages = 0 then invalid_arg "Groups.make: empty slices";
  Array.iter
    (fun r -> if Array.length r <> stages then invalid_arg "Groups.make: ragged rows")
    rows;
  { g_name = name; g_rows = rows }

let num_slices t = Array.length t.g_rows
let num_stages t = Array.length t.g_rows.(0)

let cell_ids t =
  let acc = ref [] in
  for s = num_slices t - 1 downto 0 do
    for k = num_stages t - 1 downto 0 do
      let c = t.g_rows.(s).(k) in
      if c >= 0 then acc := c :: !acc
    done
  done;
  Array.of_list !acc

let cell_count t =
  let n = ref 0 in
  Array.iter (fun row -> Array.iter (fun c -> if c >= 0 then incr n) row) t.g_rows;
  !n

let mem t id =
  if id < 0 then false
  else begin
    let found = ref false in
    Array.iter (fun row -> Array.iter (fun c -> if c = id then found := true) row) t.g_rows;
    !found
  end

let member_set t =
  let h = Hashtbl.create (cell_count t) in
  Array.iter (fun row -> Array.iter (fun c -> if c >= 0 then Hashtbl.replace h c ()) row) t.g_rows;
  h

let slice_of_cell t id =
  let result = ref None in
  Array.iteri
    (fun s row -> Array.iter (fun c -> if c = id && !result = None then result := Some s) row)
    t.g_rows;
  !result

let stage_of_cell t id =
  let result = ref None in
  Array.iter
    (fun row ->
      Array.iteri (fun k c -> if c = id && !result = None then result := Some k) row)
    t.g_rows;
  !result

let transpose t =
  let slices = num_slices t and stages = num_stages t in
  let rows = Array.init stages (fun k -> Array.init slices (fun s -> t.g_rows.(s).(k))) in
  { g_name = t.g_name; g_rows = rows }

let jaccard a b =
  let sa = member_set a and sb = member_set b in
  let inter = ref 0 in
  Hashtbl.iter (fun c () -> if Hashtbl.mem sb c then incr inter) sa;
  let union = Hashtbl.length sa + Hashtbl.length sb - !inter in
  if union = 0 then 0.0 else float_of_int !inter /. float_of_int union

let pp ppf t =
  Format.fprintf ppf "group %s: %d slices x %d stages (%d cells)" t.g_name (num_slices t)
    (num_stages t) (cell_count t)
