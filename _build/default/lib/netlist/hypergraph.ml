type t = {
  cell_net_off : int array;
  cell_nets : int array;
  net_cell_off : int array;
  net_cells : int array;
}

(* Deduplicate a sorted int list segment in place inside [dst], returning the
   new length.  Avoids per-net hash tables on million-pin designs. *)
let dedup_sorted (a : int array) lo hi =
  if hi <= lo then lo
  else begin
    let w = ref (lo + 1) in
    for r = lo + 1 to hi - 1 do
      if a.(r) <> a.(!w - 1) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    !w
  end

let build (d : Design.t) =
  let nc = Design.num_cells d and nn = Design.num_nets d in
  (* net -> cells, deduplicated *)
  let net_cell_off = Array.make (nn + 1) 0 in
  let chunks = Array.make nn [||] in
  for n = 0 to nn - 1 do
    let pins = (Design.net d n).Types.n_pins in
    let cs = Array.map (fun p -> (Design.pin d p).Types.p_cell) pins in
    Array.sort compare cs;
    let len = dedup_sorted cs 0 (Array.length cs) in
    chunks.(n) <- Array.sub cs 0 len
  done;
  for n = 0 to nn - 1 do
    net_cell_off.(n + 1) <- net_cell_off.(n) + Array.length chunks.(n)
  done;
  let net_cells = Array.make net_cell_off.(nn) 0 in
  for n = 0 to nn - 1 do
    Array.blit chunks.(n) 0 net_cells net_cell_off.(n) (Array.length chunks.(n))
  done;
  (* cell -> nets, via counting pass over the net_cells arrays *)
  let counts = Array.make nc 0 in
  Array.iter (fun c -> counts.(c) <- counts.(c) + 1) net_cells;
  let cell_net_off = Array.make (nc + 1) 0 in
  for i = 0 to nc - 1 do
    cell_net_off.(i + 1) <- cell_net_off.(i) + counts.(i)
  done;
  let cell_nets = Array.make cell_net_off.(nc) 0 in
  let cursor = Array.copy cell_net_off in
  for n = 0 to nn - 1 do
    for k = net_cell_off.(n) to net_cell_off.(n + 1) - 1 do
      let c = net_cells.(k) in
      cell_nets.(cursor.(c)) <- n;
      cursor.(c) <- cursor.(c) + 1
    done
  done;
  { cell_net_off; cell_nets; net_cell_off; net_cells }

let nets_of_cell t i =
  Array.sub t.cell_nets t.cell_net_off.(i) (t.cell_net_off.(i + 1) - t.cell_net_off.(i))

let cells_of_net t n =
  Array.sub t.net_cells t.net_cell_off.(n) (t.net_cell_off.(n + 1) - t.net_cell_off.(n))

let iter_nets_of_cell t i f =
  for k = t.cell_net_off.(i) to t.cell_net_off.(i + 1) - 1 do
    f t.cell_nets.(k)
  done

let iter_cells_of_net t n f =
  for k = t.net_cell_off.(n) to t.net_cell_off.(n + 1) - 1 do
    f t.net_cells.(k)
  done

let net_degree t n = t.net_cell_off.(n + 1) - t.net_cell_off.(n)

let cell_degree t i = t.cell_net_off.(i + 1) - t.cell_net_off.(i)

let neighbors_of_cell t i ~max_net_degree =
  let seen = Hashtbl.create 16 in
  iter_nets_of_cell t i (fun n ->
      if net_degree t n <= max_net_degree then
        iter_cells_of_net t n (fun c -> if c <> i then Hashtbl.replace seen c ()));
  Hashtbl.fold (fun c () acc -> c :: acc) seen [] |> List.sort compare
