(** Datapath group annotation: a bit-sliced structure arranged as a logical
    2-D array.  Row [s] holds the cells of bit-slice [s]; column [k] holds
    the cells of pipeline/logic stage [k].  A slot may be a hole ([-1]) when
    a slice is missing one stage (e.g. the carry-out of the last bit).

    The same representation is used for generator ground truth and for
    extractor output, so precision/recall compares like with like. *)

type t = {
  g_name : string;
  g_rows : int array array;  (** [g_rows.(slice).(stage)] = cell id or [-1] *)
}

val make : string -> int array array -> t
(** @raise Invalid_argument if rows are empty or ragged. *)

val num_slices : t -> int
val num_stages : t -> int

val cell_ids : t -> int array
(** All member cell ids (holes skipped), in row-major order. *)

val cell_count : t -> int
(** Number of non-hole members. *)

val mem : t -> int -> bool
(** Membership test, O(size). *)

val member_set : t -> (int, unit) Hashtbl.t
(** Hash set of members for repeated queries. *)

val slice_of_cell : t -> int -> int option
(** Slice index containing a cell id, if any. *)

val stage_of_cell : t -> int -> int option

val transpose : t -> t
(** Swap the slice/stage axes. *)

val jaccard : t -> t -> float
(** Cell-set Jaccard similarity between two groups. *)

val pp : Format.formatter -> t -> unit
