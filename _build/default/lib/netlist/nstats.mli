(** Design statistics for Table 1 and the logs. *)

type t = {
  s_name : string;
  s_cells : int;
  s_movable : int;
  s_fixed : int;
  s_pads : int;
  s_nets : int;
  s_pins : int;
  s_avg_net_degree : float;
  s_max_net_degree : int;
  s_datapath_cells : int;  (** cells covered by ground-truth groups *)
  s_datapath_fraction : float;  (** datapath cells / movable cells *)
  s_num_groups : int;
  s_utilization : float;
  s_rows : int;
}

val compute : Design.t -> t

val header : string list
(** Column names matching {!to_row}. *)

val to_row : t -> string list

val pp : Format.formatter -> t -> unit
