(** Core netlist entity types, shared by every stage of the flow.

    Entities are records held in dense arrays indexed by their integer ids;
    ids are assigned contiguously by {!Builder} and never change.  Cell
    positions live in the {!Design.t} coordinate arrays (not in the cell
    records) so placement iterations touch flat float arrays only. *)

type direction = Input | Output | Inout

type cell_kind =
  | Movable  (** a standard cell the placer may move *)
  | Fixed    (** pre-placed blockage or macro; position is law *)
  | Pad      (** I/O terminal on the die boundary; fixed, zero area for density *)

type cell = {
  c_id : int;
  c_name : string;
  c_master : string;  (** library master name, e.g. "NAND2_X1" *)
  c_width : float;
  c_height : float;
  c_kind : cell_kind;
  c_pins : int array;  (** pin ids on this cell *)
}

type net = {
  n_id : int;
  n_name : string;
  n_weight : float;  (** criticality weight; 1.0 by default *)
  n_pins : int array;  (** pin ids on this net *)
}

type pin = {
  p_id : int;
  p_cell : int;  (** owning cell id *)
  p_net : int;  (** net id; [-1] while unconnected during building *)
  p_dir : direction;
  p_dx : float;  (** offset from the cell's lower-left corner, N orientation *)
  p_dy : float;
}

val direction_to_string : direction -> string
val direction_of_string : string -> direction option
val cell_kind_to_string : cell_kind -> string
val is_fixed_kind : cell_kind -> bool
(** [Fixed] and [Pad] cells are immovable. *)
