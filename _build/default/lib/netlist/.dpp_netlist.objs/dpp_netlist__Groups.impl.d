lib/netlist/groups.ml: Array Format Hashtbl
