lib/netlist/groups.mli: Format Hashtbl
