lib/netlist/types.ml:
