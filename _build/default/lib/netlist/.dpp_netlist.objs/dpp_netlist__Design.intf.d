lib/netlist/design.mli: Dpp_geom Groups Types
