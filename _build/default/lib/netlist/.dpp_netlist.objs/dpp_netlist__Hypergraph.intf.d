lib/netlist/hypergraph.mli: Design
