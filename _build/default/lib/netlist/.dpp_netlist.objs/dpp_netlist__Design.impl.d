lib/netlist/design.ml: Array Dpp_geom Groups Types
