lib/netlist/types.mli:
