lib/netlist/validate.mli: Design Format
