lib/netlist/hypergraph.ml: Array Design Hashtbl List Types
