lib/netlist/bookshelf.ml: Array Builder Design Dpp_geom Dpp_util Filename Float Fun Groups Hashtbl In_channel List Option Printf String Types
