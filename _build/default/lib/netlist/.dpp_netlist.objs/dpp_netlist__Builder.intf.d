lib/netlist/builder.mli: Design Dpp_geom Groups Types
