lib/netlist/builder.ml: Array Design Dpp_geom Dpp_util Float Groups Hashtbl List Option Printf Types
