lib/netlist/nstats.ml: Array Design Format Groups Hashtbl List Printf Types
