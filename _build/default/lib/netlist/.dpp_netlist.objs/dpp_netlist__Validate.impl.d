lib/netlist/validate.ml: Array Design Dpp_geom Float Format Groups Hashtbl List Printf Types
