lib/netlist/bookshelf.mli: Design
