lib/netlist/nstats.mli: Design Format
