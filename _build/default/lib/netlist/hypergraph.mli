(** Compressed adjacency views over a design, built once and shared by the
    quadratic placer and the extractor.  All arrays are CSR-style:
    [off.(i) .. off.(i+1)-1] index into the payload array. *)

type t = {
  cell_net_off : int array;  (** length [num_cells + 1] *)
  cell_nets : int array;  (** nets incident to each cell (deduplicated) *)
  net_cell_off : int array;  (** length [num_nets + 1] *)
  net_cells : int array;  (** cells on each net (deduplicated, ascending) *)
}

val build : Design.t -> t

val nets_of_cell : t -> int -> int array
(** Fresh sub-array of the nets touching a cell. *)

val cells_of_net : t -> int -> int array

val iter_nets_of_cell : t -> int -> (int -> unit) -> unit
(** Allocation-free iteration. *)

val iter_cells_of_net : t -> int -> (int -> unit) -> unit

val net_degree : t -> int -> int
(** Number of distinct cells on the net. *)

val cell_degree : t -> int -> int

val neighbors_of_cell : t -> int -> max_net_degree:int -> int list
(** Distinct cells sharing a net with the given cell, nets wider than
    [max_net_degree] skipped (they are control/clock-like and would make the
    neighborhood quadratic).  Excludes the cell itself. *)
