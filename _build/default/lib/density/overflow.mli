(** Exact (rectangle-overlap) density accounting — the stopping criterion
    of the global placement loop and a reported quality metric. *)

val bin_usage :
  ?frozen:(int -> bool) ->
  Dpp_netlist.Design.t ->
  Grid.t ->
  cx:float array ->
  cy:float array ->
  float array
(** Movable-cell area per bin by exact rectangle overlap at the given cell
    centers (fresh array). *)

val total_overflow :
  ?frozen:(int -> bool) ->
  Dpp_netlist.Design.t ->
  Grid.t ->
  target_density:float ->
  cx:float array ->
  cy:float array ->
  float
(** [sum_b max(0, usage_b - target * capacity_b)] normalised by total
    movable area — 0 means fully spread, values near 1 mean a pile-up. *)

val max_density : Dpp_netlist.Design.t -> Grid.t -> cx:float array -> cy:float array -> float
(** Maximum bin usage / capacity ratio (bins with zero capacity but nonzero
    usage report [infinity]). *)
