(** Uniform bin grid over the die core, with per-bin free capacity
    (bin area minus fixed-cell overlap).  Shared by the bell-shaped
    potential and the exact overflow metric. *)

type t = {
  die : Dpp_geom.Rect.t;
  nx : int;
  ny : int;
  bin_w : float;
  bin_h : float;
  capacity : float array;  (** free area per bin, row-major [iy * nx + ix] *)
}

val build :
  ?extra_obstacles:Dpp_geom.Rect.t list -> Dpp_netlist.Design.t -> nx:int -> ny:int -> t
(** Capacity starts at bin area and is reduced by the overlap of every
    [Fixed] cell (pads are zero-area for density) and of every
    [extra_obstacles] rectangle (snapped datapath groups in the
    structure-aware flow's second phase). *)

val default_dims : Dpp_netlist.Design.t -> int * int
(** A square-ish grid with roughly one bin per ~4 movable cells, clamped
    to [8 .. 512] per side. *)

val index : t -> int -> int -> int
val bin_center_x : t -> int -> float
val bin_center_y : t -> int -> float
val bin_rect : t -> ix:int -> iy:int -> Dpp_geom.Rect.t

val clamp_ix : t -> int -> int
val clamp_iy : t -> int -> int

val ix_of_x : t -> float -> int
(** Bin column containing an x coordinate, clamped. *)

val iy_of_y : t -> float -> int

val range_of_interval : lo:float -> hi:float -> origin:float -> step:float -> n:int -> int * int
(** Clamped inclusive bin index range intersecting [lo, hi). *)

val total_capacity : t -> float
