module Rect = Dpp_geom.Rect
module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types

let bin_usage ?(frozen = fun _ -> false) (d : Design.t) (g : Grid.t) ~cx ~cy =
  let usage = Array.make (g.Grid.nx * g.Grid.ny) 0.0 in
  Array.iter
    (fun i ->
      if frozen i then ()
      else
      let c = Design.cell d i in
      let w = c.Types.c_width and h = c.Types.c_height in
      let xl = cx.(i) -. (w /. 2.0) and yl = cy.(i) -. (h /. 2.0) in
      let r = Rect.make ~xl ~yl ~xh:(xl +. w) ~yh:(yl +. h) in
      let ix0, ix1 =
        Grid.range_of_interval ~lo:r.Rect.xl ~hi:r.Rect.xh ~origin:g.Grid.die.Rect.xl
          ~step:g.Grid.bin_w ~n:g.Grid.nx
      in
      let iy0, iy1 =
        Grid.range_of_interval ~lo:r.Rect.yl ~hi:r.Rect.yh ~origin:g.Grid.die.Rect.yl
          ~step:g.Grid.bin_h ~n:g.Grid.ny
      in
      for iy = iy0 to iy1 do
        for ix = ix0 to ix1 do
          let ov = Rect.overlap_area r (Grid.bin_rect g ~ix ~iy) in
          if ov > 0.0 then begin
            let b = Grid.index g ix iy in
            usage.(b) <- usage.(b) +. ov
          end
        done
      done)
    (Design.movable_ids d);
  usage

let total_overflow ?(frozen = fun _ -> false) d g ~target_density ~cx ~cy =
  let usage = bin_usage ~frozen d g ~cx ~cy in
  let total_area = Design.movable_area d in
  if total_area <= 0.0 then 0.0
  else begin
    let acc = ref 0.0 in
    for b = 0 to Array.length usage - 1 do
      let cap = target_density *. g.Grid.capacity.(b) in
      if usage.(b) > cap then acc := !acc +. (usage.(b) -. cap)
    done;
    !acc /. total_area
  end

let max_density d g ~cx ~cy =
  let usage = bin_usage d g ~cx ~cy in
  let m = ref 0.0 in
  for b = 0 to Array.length usage - 1 do
    let cap = g.Grid.capacity.(b) in
    let ratio = if cap > 0.0 then usage.(b) /. cap else if usage.(b) > 0.0 then infinity else 0.0 in
    if ratio > !m then m := ratio
  done;
  !m
