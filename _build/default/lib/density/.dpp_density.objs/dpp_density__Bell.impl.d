lib/density/bell.ml: Array Dpp_geom Dpp_netlist Grid List
