lib/density/grid.mli: Dpp_geom Dpp_netlist
