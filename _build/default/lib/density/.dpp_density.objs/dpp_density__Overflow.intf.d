lib/density/overflow.mli: Dpp_netlist Grid
