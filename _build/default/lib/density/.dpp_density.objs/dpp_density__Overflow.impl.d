lib/density/overflow.ml: Array Dpp_geom Dpp_netlist Grid
