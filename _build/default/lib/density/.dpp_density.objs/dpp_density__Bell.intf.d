lib/density/bell.mli: Dpp_netlist Grid
