lib/density/grid.ml: Array Dpp_geom Dpp_netlist Float List
