module Rect = Dpp_geom.Rect
module Design = Dpp_netlist.Design
module Types = Dpp_netlist.Types

type t = {
  die : Rect.t;
  nx : int;
  ny : int;
  bin_w : float;
  bin_h : float;
  capacity : float array;
}

let index t ix iy = (iy * t.nx) + ix

let clamp_ix t ix = max 0 (min (t.nx - 1) ix)
let clamp_iy t iy = max 0 (min (t.ny - 1) iy)

let bin_center_x t ix = t.die.Rect.xl +. ((float_of_int ix +. 0.5) *. t.bin_w)
let bin_center_y t iy = t.die.Rect.yl +. ((float_of_int iy +. 0.5) *. t.bin_h)

let bin_rect t ~ix ~iy =
  let xl = t.die.Rect.xl +. (float_of_int ix *. t.bin_w) in
  let yl = t.die.Rect.yl +. (float_of_int iy *. t.bin_h) in
  Rect.make ~xl ~yl ~xh:(xl +. t.bin_w) ~yh:(yl +. t.bin_h)

let ix_of_x t x = clamp_ix t (int_of_float (floor ((x -. t.die.Rect.xl) /. t.bin_w)))
let iy_of_y t y = clamp_iy t (int_of_float (floor ((y -. t.die.Rect.yl) /. t.bin_h)))

let range_of_interval ~lo ~hi ~origin ~step ~n =
  let a = int_of_float (floor ((lo -. origin) /. step)) in
  let b = int_of_float (ceil ((hi -. origin) /. step)) - 1 in
  max 0 (min (n - 1) a), max 0 (min (n - 1) b)

let build ?(extra_obstacles = []) (d : Design.t) ~nx ~ny =
  if nx <= 0 || ny <= 0 then invalid_arg "Grid.build: non-positive dimensions";
  let die = d.Design.die in
  let bin_w = Rect.width die /. float_of_int nx in
  let bin_h = Rect.height die /. float_of_int ny in
  let capacity = Array.make (nx * ny) (bin_w *. bin_h) in
  let t = { die; nx; ny; bin_w; bin_h; capacity } in
  let subtract_rect r =
    match Rect.intersection r die with
    | None -> ()
    | Some r ->
      let ix0, ix1 =
        range_of_interval ~lo:r.Rect.xl ~hi:r.Rect.xh ~origin:die.Rect.xl ~step:bin_w ~n:nx
      in
      let iy0, iy1 =
        range_of_interval ~lo:r.Rect.yl ~hi:r.Rect.yh ~origin:die.Rect.yl ~step:bin_h ~n:ny
      in
      for iy = iy0 to iy1 do
        for ix = ix0 to ix1 do
          let b = bin_rect t ~ix ~iy in
          let ov = Rect.overlap_area r b in
          let idx = index t ix iy in
          capacity.(idx) <- max 0.0 (capacity.(idx) -. ov)
        done
      done
  in
  List.iter subtract_rect extra_obstacles;
  Array.iter
    (fun (c : Types.cell) ->
      match c.c_kind with
      | Types.Fixed -> subtract_rect (Design.cell_rect d c.c_id)
      | Types.Movable | Types.Pad -> ())
    d.Design.cells;
  t

let default_dims (d : Design.t) =
  let movable = Array.length (Design.movable_ids d) in
  (* ~4 movable cells per bin: fine enough that bin-local pile-ups cannot
     hide much displacement from the legalizer *)
  let side = int_of_float (Float.round (sqrt (float_of_int movable /. 4.0))) in
  let side = max 8 (min 512 side) in
  side, side

let total_capacity t = Array.fold_left ( +. ) 0.0 t.capacity
