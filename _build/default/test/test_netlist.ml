(* Tests for Dpp_netlist: Builder, Design, Groups, Validate, Hypergraph,
   Nstats. *)

module Rect = Dpp_geom.Rect
module Types = Dpp_netlist.Types
module Builder = Dpp_netlist.Builder
module Design = Dpp_netlist.Design
module Groups = Dpp_netlist.Groups
module Validate = Dpp_netlist.Validate
module Hypergraph = Dpp_netlist.Hypergraph
module Nstats = Dpp_netlist.Nstats

let check_float = Alcotest.(check (float 1e-9))

let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:100.0 ~yh:50.0

let fresh_builder () = Builder.create ~name:"t" ~die ~row_height:10.0 ~site_width:1.0 ()

(* A small design: 3 cells in a chain plus one pad. *)
let chain_design () =
  let b = fresh_builder () in
  let mk name =
    let id = Builder.add_cell b ~name ~master:"INV" ~w:2.0 ~h:10.0 ~kind:Types.Movable in
    let i = Builder.add_pin b ~cell:id ~dir:Types.Input ~dx:0.5 ~dy:5.0 () in
    let o = Builder.add_pin b ~cell:id ~dir:Types.Output ~dx:1.5 ~dy:5.0 () in
    id, i, o
  in
  let _c0, i0, o0 = mk "c0" in
  let _c1, i1, o1 = mk "c1" in
  let c2, i2, o2 = mk "c2" in
  let pad = Builder.add_cell b ~name:"pad0" ~master:"PAD" ~w:1.0 ~h:1.0 ~kind:Types.Pad in
  let pad_pin = Builder.add_pin b ~cell:pad ~dir:Types.Input () in
  Builder.set_position b pad ~x:99.0 ~y:0.0;
  ignore (Builder.add_net b ~name:"n0" [ o0; i1 ]);
  ignore (Builder.add_net b ~name:"n1" [ o1; i2 ]);
  ignore (Builder.add_net b ~name:"n2" [ o2; pad_pin ]);
  ignore i0;
  Builder.set_position b c2 ~x:10.0 ~y:20.0;
  Builder.finish b

(* ---------------- Builder ---------------- *)

let test_builder_ids () =
  let d = chain_design () in
  Alcotest.(check int) "cells" 4 (Design.num_cells d);
  Alcotest.(check int) "nets" 3 (Design.num_nets d);
  Alcotest.(check int) "pins" 7 (Design.num_pins d);
  Alcotest.(check string) "name preserved" "c1" (Design.cell d 1).Types.c_name

let test_builder_duplicate_name () =
  let b = fresh_builder () in
  ignore (Builder.add_cell b ~name:"x" ~master:"INV" ~w:2.0 ~h:10.0 ~kind:Types.Movable);
  Alcotest.(check bool) "raises" true
    (try
       ignore (Builder.add_cell b ~name:"x" ~master:"INV" ~w:2.0 ~h:10.0 ~kind:Types.Movable);
       false
     with Invalid_argument _ -> true)

let test_builder_bad_dimensions () =
  let b = fresh_builder () in
  Alcotest.(check bool) "zero width rejected" true
    (try
       ignore (Builder.add_cell b ~name:"z" ~master:"INV" ~w:0.0 ~h:10.0 ~kind:Types.Movable);
       false
     with Invalid_argument _ -> true)

let test_builder_double_connect () =
  let b = fresh_builder () in
  let c = Builder.add_cell b ~name:"c" ~master:"INV" ~w:2.0 ~h:10.0 ~kind:Types.Movable in
  let p = Builder.add_pin b ~cell:c ~dir:Types.Output () in
  let q = Builder.add_pin b ~cell:c ~dir:Types.Input () in
  ignore (Builder.add_net b [ p; q ]);
  Alcotest.(check bool) "pin reuse rejected" true
    (try
       ignore (Builder.add_net b [ p ]);
       false
     with Invalid_argument _ -> true)

let test_builder_empty_net () =
  let b = fresh_builder () in
  Alcotest.(check bool) "empty net rejected" true
    (try
       ignore (Builder.add_net b []);
       false
     with Invalid_argument _ -> true)

let test_builder_bad_die () =
  Alcotest.(check bool) "non-multiple die rejected" true
    (try
       ignore
         (Builder.create ~die:(Rect.make ~xl:0.0 ~yl:0.0 ~xh:10.0 ~yh:15.0) ~row_height:10.0
            ~site_width:1.0 ());
       false
     with Invalid_argument _ -> true)

let test_builder_use_after_finish () =
  let b = fresh_builder () in
  ignore (Builder.add_cell b ~name:"c" ~master:"INV" ~w:2.0 ~h:10.0 ~kind:Types.Movable);
  ignore (Builder.finish b);
  Alcotest.(check bool) "finished builder rejects" true
    (try
       ignore (Builder.add_cell b ~name:"d" ~master:"INV" ~w:2.0 ~h:10.0 ~kind:Types.Movable);
       false
     with Invalid_argument _ -> true)

let test_builder_set_die () =
  let b = fresh_builder () in
  Builder.set_die b (Rect.make ~xl:0.0 ~yl:0.0 ~xh:200.0 ~yh:80.0);
  let d = Builder.finish b in
  Alcotest.(check int) "rows updated" 8 d.Design.num_rows

(* ---------------- Design ---------------- *)

let test_design_geometry () =
  let d = chain_design () in
  check_float "center x" 11.0 (Design.cell_center_x d 2);
  check_float "center y" 25.0 (Design.cell_center_y d 2);
  Design.set_center d 2 50.0 25.0;
  check_float "moved x" 49.0 d.Design.x.(2);
  let px, py = Design.pin_position d 4 in
  (* pin 4 = input of c2 at dx 0.5 *)
  check_float "pin x" 49.5 px;
  check_float "pin y" 25.0 py

let test_design_rows () =
  let d = chain_design () in
  check_float "row 2 y" 20.0 (Design.row_y d 2);
  Alcotest.(check int) "row of y" 2 (Design.row_of_y d 25.0);
  Alcotest.(check int) "row clamped" 4 (Design.row_of_y d 1000.0)

let test_design_populations () =
  let d = chain_design () in
  Alcotest.(check int) "movable" 3 (Array.length (Design.movable_ids d));
  Alcotest.(check int) "fixed+pads" 1 (Array.length (Design.fixed_ids d));
  check_float "movable area" 60.0 (Design.movable_area d);
  check_float "avg degree" 2.0 (Design.average_net_degree d)

let test_design_copy_restore () =
  let d = chain_design () in
  let x, y = Design.copy_positions d in
  Design.set_center d 0 77.0 33.0;
  Design.restore_positions d x y;
  check_float "restored" (Design.cell_center_x d 0) 1.0

(* ---------------- Groups ---------------- *)

let test_groups_basic () =
  let g = Groups.make "g" [| [| 0; 1 |]; [| 2; -1 |] |] in
  Alcotest.(check int) "slices" 2 (Groups.num_slices g);
  Alcotest.(check int) "stages" 2 (Groups.num_stages g);
  Alcotest.(check int) "cells" 3 (Groups.cell_count g);
  Alcotest.(check bool) "mem" true (Groups.mem g 2);
  Alcotest.(check bool) "not mem hole" false (Groups.mem g (-1));
  Alcotest.(check bool) "slice lookup" true (Groups.slice_of_cell g 2 = Some 1);
  Alcotest.(check bool) "stage lookup" true (Groups.stage_of_cell g 1 = Some 1)

let test_groups_ragged () =
  Alcotest.(check bool) "ragged rejected" true
    (try
       ignore (Groups.make "bad" [| [| 0 |]; [| 1; 2 |] |]);
       false
     with Invalid_argument _ -> true)

let test_groups_transpose () =
  let g = Groups.make "g" [| [| 0; 1; 2 |]; [| 3; 4; 5 |] |] in
  let t = Groups.transpose g in
  Alcotest.(check int) "transposed slices" 3 (Groups.num_slices t);
  Alcotest.(check bool) "entry moved" true (t.Groups.g_rows.(1).(0) = 1)

let test_groups_jaccard () =
  let a = Groups.make "a" [| [| 0; 1 |]; [| 2; 3 |] |] in
  let b = Groups.make "b" [| [| 2; 3 |]; [| 4; 5 |] |] in
  check_float "jaccard" (1.0 /. 3.0) (Groups.jaccard a b);
  check_float "self jaccard" 1.0 (Groups.jaccard a a)

(* ---------------- Validate ---------------- *)

let test_validate_clean () =
  let d = chain_design () in
  let issues = Validate.check d in
  Alcotest.(check bool) "clean" true (Validate.is_clean issues)

let test_validate_degenerate_net () =
  let b = fresh_builder () in
  let c = Builder.add_cell b ~name:"c" ~master:"INV" ~w:2.0 ~h:10.0 ~kind:Types.Movable in
  let p = Builder.add_pin b ~cell:c ~dir:Types.Output () in
  ignore (Builder.add_net b [ p ]);
  let d = Builder.finish b in
  let issues = Validate.check d in
  Alcotest.(check bool) "single-pin net warns" true
    (List.exists (fun i -> i.Validate.severity = Validate.Warning) issues);
  Alcotest.(check bool) "still clean" true (Validate.is_clean issues)

let test_validate_overfull () =
  let small = Rect.make ~xl:0.0 ~yl:0.0 ~xh:10.0 ~yh:10.0 in
  let b = Builder.create ~die:small ~row_height:10.0 ~site_width:1.0 () in
  for k = 0 to 19 do
    ignore
      (Builder.add_cell b ~name:(Printf.sprintf "c%d" k) ~master:"INV" ~w:2.0 ~h:10.0
         ~kind:Types.Movable)
  done;
  let d = Builder.finish b in
  Alcotest.(check bool) "overfull is an error" false (Validate.is_clean (Validate.check d))

let test_validate_tall_cell () =
  (* heights that are whole row multiples are legal movable macros;
     fractional-row heights are errors *)
  let b = fresh_builder () in
  ignore (Builder.add_cell b ~name:"macro" ~master:"X" ~w:2.0 ~h:20.0 ~kind:Types.Movable);
  let d = Builder.finish b in
  Alcotest.(check bool) "two-row movable macro is fine" true
    (Validate.is_clean (Validate.check d));
  let b = fresh_builder () in
  ignore (Builder.add_cell b ~name:"bad" ~master:"X" ~w:2.0 ~h:15.0 ~kind:Types.Movable);
  let d = Builder.finish b in
  Alcotest.(check bool) "fractional-row movable is an error" false
    (Validate.is_clean (Validate.check d))

let test_validate_group_fixed_member () =
  let b = fresh_builder () in
  let f = Builder.add_cell b ~name:"blk" ~master:"MACRO" ~w:5.0 ~h:10.0 ~kind:Types.Fixed in
  let c = Builder.add_cell b ~name:"c" ~master:"INV" ~w:2.0 ~h:10.0 ~kind:Types.Movable in
  Builder.add_group b (Groups.make "g" [| [| f |]; [| c |] |]);
  let d = Builder.finish b in
  Alcotest.(check bool) "fixed group member is an error" false
    (Validate.is_clean (Validate.check d))

(* ---------------- Hypergraph ---------------- *)

let test_hypergraph_adjacency () =
  let d = chain_design () in
  let h = Hypergraph.build d in
  Alcotest.(check (list int)) "nets of c1" [ 0; 1 ]
    (Array.to_list (Hypergraph.nets_of_cell h 1));
  Alcotest.(check (list int)) "cells of n1" [ 1; 2 ]
    (Array.to_list (Hypergraph.cells_of_net h 1));
  Alcotest.(check int) "net degree" 2 (Hypergraph.net_degree h 0);
  Alcotest.(check int) "cell degree" 2 (Hypergraph.cell_degree h 1)

let test_hypergraph_neighbors () =
  let d = chain_design () in
  let h = Hypergraph.build d in
  Alcotest.(check (list int)) "neighbors of c1" [ 0; 2 ]
    (Hypergraph.neighbors_of_cell h 1 ~max_net_degree:8)

let test_hypergraph_dedup () =
  (* two pins of the same cell on one net must not duplicate adjacency *)
  let b = fresh_builder () in
  let c0 = Builder.add_cell b ~name:"a" ~master:"X" ~w:2.0 ~h:10.0 ~kind:Types.Movable in
  let c1 = Builder.add_cell b ~name:"b" ~master:"X" ~w:2.0 ~h:10.0 ~kind:Types.Movable in
  let p1 = Builder.add_pin b ~cell:c0 ~dir:Types.Output () in
  let p2 = Builder.add_pin b ~cell:c0 ~dir:Types.Input () in
  let p3 = Builder.add_pin b ~cell:c1 ~dir:Types.Input () in
  ignore (Builder.add_net b [ p1; p2; p3 ]);
  let d = Builder.finish b in
  let h = Hypergraph.build d in
  Alcotest.(check int) "deduplicated degree" 2 (Hypergraph.net_degree h 0)

(* ---------------- Nstats ---------------- *)

let test_nstats () =
  let d = chain_design () in
  let s = Nstats.compute d in
  Alcotest.(check int) "cells" 4 s.Nstats.s_cells;
  Alcotest.(check int) "movable" 3 s.Nstats.s_movable;
  Alcotest.(check int) "pads" 1 s.Nstats.s_pads;
  Alcotest.(check int) "row count" 5 s.Nstats.s_rows;
  Alcotest.(check int) "row length matches header" (List.length Nstats.header)
    (List.length (Nstats.to_row s))

let suite =
  [
    Alcotest.test_case "builder ids" `Quick test_builder_ids;
    Alcotest.test_case "builder duplicate name" `Quick test_builder_duplicate_name;
    Alcotest.test_case "builder bad dims" `Quick test_builder_bad_dimensions;
    Alcotest.test_case "builder double connect" `Quick test_builder_double_connect;
    Alcotest.test_case "builder empty net" `Quick test_builder_empty_net;
    Alcotest.test_case "builder bad die" `Quick test_builder_bad_die;
    Alcotest.test_case "builder use after finish" `Quick test_builder_use_after_finish;
    Alcotest.test_case "builder set_die" `Quick test_builder_set_die;
    Alcotest.test_case "design geometry" `Quick test_design_geometry;
    Alcotest.test_case "design rows" `Quick test_design_rows;
    Alcotest.test_case "design populations" `Quick test_design_populations;
    Alcotest.test_case "design copy/restore" `Quick test_design_copy_restore;
    Alcotest.test_case "groups basic" `Quick test_groups_basic;
    Alcotest.test_case "groups ragged" `Quick test_groups_ragged;
    Alcotest.test_case "groups transpose" `Quick test_groups_transpose;
    Alcotest.test_case "groups jaccard" `Quick test_groups_jaccard;
    Alcotest.test_case "validate clean" `Quick test_validate_clean;
    Alcotest.test_case "validate degenerate net" `Quick test_validate_degenerate_net;
    Alcotest.test_case "validate overfull" `Quick test_validate_overfull;
    Alcotest.test_case "validate tall cell" `Quick test_validate_tall_cell;
    Alcotest.test_case "validate fixed group member" `Quick test_validate_group_fixed_member;
    Alcotest.test_case "hypergraph adjacency" `Quick test_hypergraph_adjacency;
    Alcotest.test_case "hypergraph neighbors" `Quick test_hypergraph_neighbors;
    Alcotest.test_case "hypergraph dedup" `Quick test_hypergraph_dedup;
    Alcotest.test_case "nstats" `Quick test_nstats;
  ]
