(* Cross-module property tests that need several libraries together. *)

module Rect = Dpp_geom.Rect
module Interval = Dpp_geom.Interval
module Types = Dpp_netlist.Types
module Design = Dpp_netlist.Design
module Pins = Dpp_wirelen.Pins
module Hpwl = Dpp_wirelen.Hpwl
module Csr = Dpp_numeric.Csr
module Rng = Dpp_util.Rng

let prop_rng_float_in =
  QCheck.Test.make ~name:"rng float_in stays in range" ~count:300
    QCheck.(triple small_int (float_range (-50.0) 50.0) (float_range 0.001 100.0))
    (fun (seed, lo, span) ->
      let r = Rng.create seed in
      let v = Rng.float_in r lo (lo +. span) in
      v >= lo && v < lo +. span)

let prop_interval_shift =
  QCheck.Test.make ~name:"interval shift preserves length" ~count:200
    QCheck.(triple (float_range (-100.0) 100.0) (float_range 0.0 50.0) (float_range (-30.0) 30.0))
    (fun (lo, len, delta) ->
      let i = Interval.make lo (lo +. len) in
      abs_float (Interval.length (Interval.shift i delta) -. Interval.length i) < 1e-9)

let prop_csr_transpose_involution =
  let gen =
    QCheck.Gen.(
      let* n = 1 -- 5 in
      let* entries =
        list_size (0 -- 15) (triple (0 -- (n - 1)) (0 -- (n - 1)) (float_range (-4.0) 4.0))
      in
      return (n, entries))
  in
  QCheck.Test.make ~name:"csr transpose involution" ~count:150 (QCheck.make gen)
    (fun (n, entries) ->
      let b = Csr.Triplets.create ~rows:n ~cols:n in
      List.iter (fun (i, j, v) -> Csr.Triplets.add b i j v) entries;
      let a = Csr.Triplets.to_csr b in
      let t2 = Csr.transpose (Csr.transpose a) in
      let ok = ref (Csr.nnz a = Csr.nnz t2) in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if abs_float (Csr.get a i j -. Csr.get t2 i j) > 1e-9 then ok := false
        done
      done;
      !ok)

let prop_hpwl_nonnegative_and_scaling =
  QCheck.Test.make ~name:"hpwl nonnegative and scale-covariant" ~count:50 QCheck.small_int
    (fun seed ->
      let d = Tutil.random_design ~cells:8 ~nets:6 (seed + 1) in
      let pins = Pins.build d in
      let cx, cy = Pins.centers_of_design d in
      let h = Hpwl.total pins ~cx ~cy in
      let cx2 = Array.map (fun x -> 2.0 *. x) cx in
      let cy2 = Array.map (fun y -> 2.0 *. y) cy in
      (* scaling positions scales the position-dependent part; with pin
         offsets fixed the relation is not exactly 2x, so only check
         monotone growth and nonnegativity *)
      let h2 = Hpwl.total pins ~cx:cx2 ~cy:cy2 in
      h >= 0.0 && h2 >= h -. 1e-6)

let prop_legality_catches_overlap =
  QCheck.Test.make ~name:"legality audit catches injected overlaps" ~count:50 QCheck.small_int
    (fun seed ->
      let d = Tutil.random_design ~cells:10 ~nets:5 (seed + 100) in
      (* legalize trivially: place cells side by side on row 0 *)
      let nc = Design.num_cells d in
      let cx = Array.make nc 0.0 and cy = Array.make nc 0.0 in
      let cursor = ref 0.0 in
      Array.iter
        (fun i ->
          let w = (Design.cell d i).Types.c_width in
          cx.(i) <- !cursor +. (w /. 2.0);
          cy.(i) <- 5.0;
          cursor := !cursor +. w)
        (Design.movable_ids d);
      let clean = Dpp_place.Legality.check d ~cx ~cy = [] in
      (* now inject an overlap: move cell 1 onto cell 0 *)
      let m = Design.movable_ids d in
      cx.(m.(1)) <- cx.(m.(0));
      let caught =
        List.exists
          (function Dpp_place.Legality.Overlap _ -> true | _ -> false)
          (Dpp_place.Legality.check d ~cx ~cy)
      in
      clean && caught)

let prop_bookshelf_roundtrip_random =
  QCheck.Test.make ~name:"bookshelf roundtrip on random designs" ~count:15 QCheck.small_int
    (fun seed ->
      let d = Tutil.random_design ~cells:10 ~nets:8 (seed + 500) in
      let dir = Filename.temp_file "dpp_prop" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o755;
      let base = Filename.concat dir "t" in
      Dpp_netlist.Bookshelf.write d ~basename:base;
      let d' = Dpp_netlist.Bookshelf.read ~basename:base in
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir;
      (* unconnected pins are not representable in Bookshelf, so compare
         connected pins only; HPWL is written with 4 decimals so rounding
         can accumulate slightly *)
      let connected dd =
        Array.fold_left
          (fun acc (p : Types.pin) -> if p.Types.p_net >= 0 then acc + 1 else acc)
          0 dd.Design.pins
      in
      Design.num_cells d = Design.num_cells d'
      && Design.num_nets d = Design.num_nets d'
      && connected d = connected d'
      && abs_float (Hpwl.total_of_design d -. Hpwl.total_of_design d') < 0.05)

let prop_steiner_between_bounds =
  QCheck.Test.make ~name:"rsmt between hpwl and rmst per net" ~count:50 QCheck.small_int
    (fun seed ->
      let d = Tutil.random_design ~cells:10 ~nets:8 (seed + 900) in
      let pins = Pins.build d in
      let cx, cy = Pins.centers_of_design d in
      let ok = ref true in
      for n = 0 to Design.num_nets d - 1 do
        let k = Pins.load_net pins ~cx ~cy n in
        let points = Array.init k (fun i -> pins.Pins.scratch_x.(i), pins.Pins.scratch_y.(i)) in
        let st = Dpp_steiner.Rsmt.length points in
        let mst = Dpp_steiner.Mst.length points in
        let hp = Hpwl.net pins ~cx ~cy n in
        if st > mst +. 1e-6 || st < hp -. 1e-6 then ok := false
      done;
      !ok)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_rng_float_in;
    QCheck_alcotest.to_alcotest prop_interval_shift;
    QCheck_alcotest.to_alcotest prop_csr_transpose_involution;
    QCheck_alcotest.to_alcotest prop_hpwl_nonnegative_and_scaling;
    QCheck_alcotest.to_alcotest prop_legality_catches_overlap;
    QCheck_alcotest.to_alcotest prop_bookshelf_roundtrip_random;
    QCheck_alcotest.to_alcotest prop_steiner_between_bounds;
  ]
