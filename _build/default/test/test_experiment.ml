(* Light tests of the experiment harness (the expensive flows are covered
   by the bench itself; here we check the cheap tables' shapes). *)

module Experiment = Dpp_core.Experiment

let test_table1_shape () =
  let t = Experiment.table1 () in
  Alcotest.(check int) "one row per preset" (List.length Dpp_gen.Presets.suite)
    (List.length t.Experiment.t_rows);
  List.iter
    (fun row ->
      Alcotest.(check int) "row width matches header" (List.length t.Experiment.t_header)
        (List.length row))
    t.Experiment.t_rows;
  (* first column is the design name, in suite order *)
  List.iter2
    (fun name row -> Alcotest.(check string) "name column" name (List.hd row))
    Dpp_gen.Presets.names t.Experiment.t_rows

let test_table2_shape () =
  let t = Experiment.table2 () in
  Alcotest.(check int) "one row per preset" (List.length Dpp_gen.Presets.suite)
    (List.length t.Experiment.t_rows);
  (* precision column (index 6) must parse as a float in [0,1] *)
  List.iter
    (fun row ->
      match float_of_string_opt (List.nth row 6) with
      | Some p when p >= 0.0 && p <= 1.0 -> ()
      | Some p -> Alcotest.failf "precision %f out of range" p
      | None -> Alcotest.fail "precision not a number")
    t.Experiment.t_rows

let test_print_table () =
  (* printing must not raise *)
  let t = Experiment.table1 () in
  let dev_null = open_out (if Sys.win32 then "NUL" else "/dev/null") in
  Fun.protect
    ~finally:(fun () -> close_out dev_null)
    (fun () ->
      Dpp_report.Table.print ~out:dev_null ~title:t.Experiment.t_title
        ~header:t.Experiment.t_header t.Experiment.t_rows);
  Alcotest.(check pass) "printed" () ()

let suite =
  [
    Alcotest.test_case "table1 shape" `Quick test_table1_shape;
    Alcotest.test_case "table2 shape" `Quick test_table2_shape;
    Alcotest.test_case "print table" `Quick test_print_table;
  ]
