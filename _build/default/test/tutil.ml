(* Shared helpers for the test suite: small random designs and a finite
   difference gradient checker. *)

module Rect = Dpp_geom.Rect
module Types = Dpp_netlist.Types
module Builder = Dpp_netlist.Builder
module Design = Dpp_netlist.Design
module Rng = Dpp_util.Rng

(* A random movable-only design: [cells] cells of 2..6 sites, [nets] random
   nets of degree 2..5, positions scattered in the die. *)
let random_design ?(cells = 12) ?(nets = 10) ?(die_w = 60.0) ?(die_rows = 6) seed =
  let rng = Rng.create seed in
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:die_w ~yh:(10.0 *. float_of_int die_rows) in
  let b = Builder.create ~name:"rand" ~die ~row_height:10.0 ~site_width:1.0 () in
  let pins = ref [] in
  for k = 0 to cells - 1 do
    let w = float_of_int (2 + Rng.int rng 5) in
    let id =
      Builder.add_cell b ~name:(Printf.sprintf "c%d" k) ~master:"X" ~w ~h:10.0
        ~kind:Types.Movable
    in
    (* two pins per cell at distinct offsets *)
    let p1 = Builder.add_pin b ~cell:id ~dir:Types.Input ~dx:(w /. 4.0) ~dy:3.0 () in
    let p2 = Builder.add_pin b ~cell:id ~dir:Types.Output ~dx:(3.0 *. w /. 4.0) ~dy:7.0 () in
    pins := p2 :: p1 :: !pins;
    Builder.set_position b id
      ~x:(Rng.float rng (die_w -. w))
      ~y:(float_of_int (Rng.int rng die_rows) *. 10.0)
  done;
  let pin_pool = Array.of_list !pins in
  Rng.shuffle rng pin_pool;
  let cursor = ref 0 in
  let take () =
    if !cursor < Array.length pin_pool then begin
      let p = pin_pool.(!cursor) in
      incr cursor;
      Some p
    end
    else None
  in
  for _ = 1 to nets do
    let deg = 2 + Rng.int rng 4 in
    let ps = List.filter_map (fun _ -> take ()) (List.init deg Fun.id) in
    if List.length ps >= 2 then ignore (Builder.add_net b ps)
  done;
  Builder.finish b

(* Central finite difference check of an analytic gradient.
   [value_grad cx cy gx gy] must return the objective and accumulate
   gradients; returns the max relative error over all movable coords. *)
let gradient_error d ~value_grad =
  let nc = Design.num_cells d in
  let cx, cy = Dpp_wirelen.Pins.centers_of_design d in
  let gx = Array.make nc 0.0 and gy = Array.make nc 0.0 in
  ignore (value_grad ~cx ~cy ~gx ~gy);
  let eps = 1e-5 in
  let value ~cx ~cy =
    let zx = Array.make nc 0.0 and zy = Array.make nc 0.0 in
    value_grad ~cx ~cy ~gx:zx ~gy:zy
  in
  let max_err = ref 0.0 in
  let check arr g i =
    let saved = arr.(i) in
    arr.(i) <- saved +. eps;
    let fp = value ~cx ~cy in
    arr.(i) <- saved -. eps;
    let fm = value ~cx ~cy in
    arr.(i) <- saved;
    let numeric = (fp -. fm) /. (2.0 *. eps) in
    let denom = max 1.0 (abs_float numeric) in
    let err = abs_float (numeric -. g.(i)) /. denom in
    if err > !max_err then max_err := err
  in
  Array.iter
    (fun i ->
      check cx gx i;
      check cy gy i)
    (Design.movable_ids d);
  !max_err
