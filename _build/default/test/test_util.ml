(* Tests for Dpp_util: Rng, Union_find, Heap, Statx, Dyn, Csvout, Timer. *)

module Rng = Dpp_util.Rng
module Union_find = Dpp_util.Union_find
module Heap = Dpp_util.Heap
module Statx = Dpp_util.Statx
module Dyn = Dpp_util.Dyn
module Csvout = Dpp_util.Csvout
module Timer = Dpp_util.Timer

let check_float = Alcotest.(check (float 1e-9))

(* ---------------- Rng ---------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 8 (fun _ -> Rng.bits64 a) in
  let ys = List.init 8 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "different seeds differ" true (xs <> ys)

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child1 = Rng.split parent in
  let child2 = Rng.split parent in
  let a = List.init 8 (fun _ -> Rng.bits64 child1) in
  let b = List.init 8 (fun _ -> Rng.bits64 child2) in
  Alcotest.(check bool) "children differ" true (a <> b)

let test_rng_copy () =
  let a = Rng.create 3 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_int_bounds () =
  let r = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "zero bound rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_int_in () =
  let r = Rng.create 12 in
  for _ = 1 to 500 do
    let v = Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "in closed range" true (v >= -5 && v <= 5)
  done

let test_rng_float_bounds () =
  let r = Rng.create 13 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_bernoulli_bias () =
  let r = Rng.create 14 in
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "approx 0.3" true (abs_float (p -. 0.3) < 0.02)

let test_rng_gaussian_moments () =
  let r = Rng.create 15 in
  let n = 50_000 in
  let samples = Array.init n (fun _ -> Rng.gaussian r ~mean:2.0 ~stddev:3.0) in
  Alcotest.(check bool) "mean approx 2" true (abs_float (Statx.mean samples -. 2.0) < 0.1);
  Alcotest.(check bool) "stddev approx 3" true (abs_float (Statx.stddev samples -. 3.0) < 0.1)

let test_rng_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:100
    QCheck.(pair small_int (small_list int))
    (fun (seed, l) ->
      let a = Array.of_list l in
      let b = Array.copy a in
      Rng.shuffle (Rng.create seed) b;
      List.sort compare (Array.to_list a) = List.sort compare (Array.to_list b))

let test_rng_sample_without_replacement () =
  let r = Rng.create 16 in
  let s = Rng.sample_without_replacement r 5 10 in
  Alcotest.(check int) "size" 5 (Array.length s);
  let sorted = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "distinct" 5 (List.length sorted);
  List.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 10)) sorted

(* ---------------- Union_find ---------------- *)

let test_uf_basic () =
  let u = Union_find.create 6 in
  Alcotest.(check int) "initial sets" 6 (Union_find.count_sets u);
  Union_find.union u 0 1;
  Union_find.union u 1 2;
  Alcotest.(check bool) "0~2" true (Union_find.same u 0 2);
  Alcotest.(check bool) "0!~3" false (Union_find.same u 0 3);
  Alcotest.(check int) "sizes" 3 (Union_find.size u 2);
  Alcotest.(check int) "sets after unions" 4 (Union_find.count_sets u)

let test_uf_idempotent_union () =
  let u = Union_find.create 4 in
  Union_find.union u 0 1;
  Union_find.union u 0 1;
  Alcotest.(check int) "size stable" 2 (Union_find.size u 0)

let test_uf_groups () =
  let u = Union_find.create 5 in
  Union_find.union u 0 3;
  Union_find.union u 1 4;
  let groups = Union_find.groups u in
  let non_empty = Array.to_list groups |> List.filter (fun g -> g <> []) in
  Alcotest.(check int) "three groups" 3 (List.length non_empty);
  let all = List.concat non_empty |> List.sort compare in
  Alcotest.(check (list int)) "all members" [ 0; 1; 2; 3; 4 ] all

let test_uf_transitivity =
  QCheck.Test.make ~name:"union-find transitivity" ~count:50
    QCheck.(list (pair (int_bound 19) (int_bound 19)))
    (fun pairs ->
      let u = Union_find.create 20 in
      List.iter (fun (a, b) -> Union_find.union u a b) pairs;
      (* find is consistent: same root <-> same set *)
      List.for_all
        (fun (a, b) -> Union_find.same u a b = (Union_find.find u a = Union_find.find u b))
        pairs)

(* ---------------- Heap ---------------- *)

let test_heap_ordering () =
  let h = Heap.of_list [ (3.0, "c"); (1.0, "a"); (2.0, "b") ] in
  Alcotest.(check (list string)) "sorted drain" [ "a"; "b"; "c" ]
    (List.map snd (Heap.to_sorted_list h))

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.check_raises "pop_exn raises" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_heap_peek () =
  let h = Heap.create () in
  Heap.push h 5.0 'x';
  Heap.push h 1.0 'y';
  Alcotest.(check bool) "peek min" true (Heap.peek h = Some (1.0, 'y'));
  Alcotest.(check int) "length" 2 (Heap.length h)

let test_heap_sorted =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list (float_bound_inclusive 1000.0))
    (fun l ->
      let h = Heap.of_list (List.map (fun p -> p, ()) l) in
      let drained = List.map fst (Heap.to_sorted_list h) in
      drained = List.sort Float.compare l)

(* ---------------- Statx ---------------- *)

let test_statx_known () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Statx.mean a);
  check_float "median" 2.5 (Statx.median a);
  check_float "variance" 1.25 (Statx.variance a);
  check_float "sum" 10.0 (Statx.sum a);
  check_float "min" 1.0 (Statx.minimum a);
  check_float "max" 4.0 (Statx.maximum a)

let test_statx_geomean () =
  check_float "geomean" 2.0 (Statx.geomean [| 1.0; 2.0; 4.0 |]);
  Alcotest.check_raises "non-positive rejected"
    (Invalid_argument "Statx.geomean: non-positive value") (fun () ->
      ignore (Statx.geomean [| 1.0; 0.0 |]))

let test_statx_empty () =
  check_float "empty mean" 0.0 (Statx.mean [||]);
  check_float "empty median" 0.0 (Statx.median [||]);
  check_float "empty geomean" 1.0 (Statx.geomean [||])

let test_statx_quantile () =
  let a = [| 10.0; 20.0; 30.0; 40.0 |] in
  check_float "q0" 10.0 (Statx.quantile a 0.0);
  check_float "q1" 40.0 (Statx.quantile a 1.0);
  check_float "q50" 25.0 (Statx.quantile a 0.5)

let test_statx_entropy () =
  check_float "uniform entropy" (log 4.0) (Statx.entropy [| 1.0; 1.0; 1.0; 1.0 |]);
  check_float "point mass" 0.0 (Statx.entropy [| 5.0; 0.0 |])

let test_statx_pearson () =
  let x = [| 1.0; 2.0; 3.0 |] in
  check_float "perfect corr" 1.0 (Statx.pearson x [| 2.0; 4.0; 6.0 |]);
  check_float "perfect anticorr" (-1.0) (Statx.pearson x [| 3.0; 2.0; 1.0 |]);
  check_float "constant" 0.0 (Statx.pearson x [| 1.0; 1.0; 1.0 |])

let test_statx_geomean_mean =
  QCheck.Test.make ~name:"geomean <= mean (AM-GM)" ~count:200
    QCheck.(list_of_size Gen.(1 -- 20) (float_range 0.001 1000.0))
    (fun l ->
      let a = Array.of_list l in
      Statx.geomean a <= Statx.mean a +. 1e-9)

(* ---------------- Dyn ---------------- *)

let test_dyn_push_get () =
  let v = Dyn.create () in
  for i = 0 to 99 do
    Dyn.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Dyn.length v);
  Alcotest.(check int) "get" 81 (Dyn.get v 9);
  Dyn.set v 9 7;
  Alcotest.(check int) "set" 7 (Dyn.get v 9);
  Alcotest.check_raises "oob" (Invalid_argument "Dyn: index out of bounds") (fun () ->
      ignore (Dyn.get v 100))

let test_dyn_roundtrip =
  QCheck.Test.make ~name:"dyn of_array/to_array roundtrip" ~count:100
    QCheck.(array small_int)
    (fun a -> Dyn.to_array (Dyn.of_array a) = a)

(* ---------------- Csvout ---------------- *)

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Csvout.escape_field "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csvout.escape_field "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csvout.escape_field "a\"b");
  Alcotest.(check string) "row" "a,\"b,c\",d" (Csvout.row_to_string [ "a"; "b,c"; "d" ])

let test_csv_write_read () =
  let path = Filename.temp_file "dpp_test" ".csv" in
  Csvout.write path [ [ "h1"; "h2" ]; [ "1"; "x,y" ] ];
  let ic = open_in path in
  let l1 = input_line ic in
  let l2 = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "h1,h2" l1;
  Alcotest.(check string) "row" "1,\"x,y\"" l2

(* ---------------- Timer ---------------- *)

let test_timer () =
  let t = Timer.create () in
  let x = Timer.time t "stage_a" (fun () -> 41 + 1) in
  Alcotest.(check int) "result passes through" 42 x;
  Alcotest.(check bool) "recorded" true (Timer.get t "stage_a" >= 0.0);
  ignore (Timer.time t "stage_a" (fun () -> ()));
  Alcotest.(check int) "stages listed once" 1 (List.length (Timer.stages t));
  Timer.reset t;
  Alcotest.(check int) "reset" 0 (List.length (Timer.stages t))

let test_timer_exception () =
  let t = Timer.create () in
  (try Timer.time t "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check bool) "recorded despite exception" true (Timer.get t "boom" >= 0.0)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "rng copy" `Quick test_rng_copy;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng int_in" `Quick test_rng_int_in;
    Alcotest.test_case "rng float bounds" `Quick test_rng_float_bounds;
    Alcotest.test_case "rng bernoulli bias" `Quick test_rng_bernoulli_bias;
    Alcotest.test_case "rng gaussian moments" `Quick test_rng_gaussian_moments;
    QCheck_alcotest.to_alcotest test_rng_shuffle_permutation;
    Alcotest.test_case "rng sampling" `Quick test_rng_sample_without_replacement;
    Alcotest.test_case "union-find basic" `Quick test_uf_basic;
    Alcotest.test_case "union-find idempotent" `Quick test_uf_idempotent_union;
    Alcotest.test_case "union-find groups" `Quick test_uf_groups;
    QCheck_alcotest.to_alcotest test_uf_transitivity;
    Alcotest.test_case "heap ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap empty" `Quick test_heap_empty;
    Alcotest.test_case "heap peek" `Quick test_heap_peek;
    QCheck_alcotest.to_alcotest test_heap_sorted;
    Alcotest.test_case "statx known values" `Quick test_statx_known;
    Alcotest.test_case "statx geomean" `Quick test_statx_geomean;
    Alcotest.test_case "statx empty" `Quick test_statx_empty;
    Alcotest.test_case "statx quantile" `Quick test_statx_quantile;
    Alcotest.test_case "statx entropy" `Quick test_statx_entropy;
    Alcotest.test_case "statx pearson" `Quick test_statx_pearson;
    QCheck_alcotest.to_alcotest test_statx_geomean_mean;
    Alcotest.test_case "dyn push/get" `Quick test_dyn_push_get;
    QCheck_alcotest.to_alcotest test_dyn_roundtrip;
    Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
    Alcotest.test_case "csv write/read" `Quick test_csv_write_read;
    Alcotest.test_case "timer" `Quick test_timer;
    Alcotest.test_case "timer exception" `Quick test_timer_exception;
  ]
