test/test_macros.ml: Alcotest Array Dpp_core Dpp_density Dpp_gen Dpp_geom Dpp_netlist Dpp_place Dpp_structure Dpp_util Dpp_wirelen Format List Printf
