test/test_numeric.ml: Alcotest Array Dpp_numeric Dpp_util List QCheck QCheck_alcotest
