test/test_netlist.ml: Alcotest Array Dpp_geom Dpp_netlist List Printf
