test/test_experiment.ml: Alcotest Dpp_core Dpp_gen Dpp_report Fun List Sys
