test/test_place.ml: Alcotest Array Dpp_density Dpp_gen Dpp_geom Dpp_netlist Dpp_place Dpp_structure Dpp_wirelen Format List Printf
