test/test_geom.ml: Alcotest Dpp_geom Format List QCheck QCheck_alcotest
