test/test_util.ml: Alcotest Array Dpp_util Filename Float Gen List QCheck QCheck_alcotest Sys
