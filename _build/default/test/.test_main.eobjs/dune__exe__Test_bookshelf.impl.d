test/test_bookshelf.ml: Alcotest Array Dpp_gen Dpp_netlist Filename Float List Sys Unix
