test/test_wirelen.ml: Alcotest Array Dpp_geom Dpp_netlist Dpp_wirelen Float List Tutil
