test/test_report.ml: Alcotest Dpp_report Filename List String Sys
