test/test_flow.ml: Alcotest Array Dpp_core Dpp_gen Dpp_geom Dpp_netlist Dpp_place Dpp_wirelen Float List Printf
