test/tutil.ml: Array Dpp_geom Dpp_netlist Dpp_util Dpp_wirelen Fun List Printf
