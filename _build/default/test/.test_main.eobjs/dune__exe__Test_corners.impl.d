test/test_corners.ml: Alcotest Array Dpp_extract Dpp_gen Dpp_geom Dpp_netlist Dpp_place Dpp_structure Dpp_timing Dpp_util Dpp_wirelen List Printf
