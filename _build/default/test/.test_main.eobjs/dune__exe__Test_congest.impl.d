test/test_congest.ml: Alcotest Array Dpp_congest Dpp_gen Dpp_geom Dpp_netlist Dpp_place Dpp_wirelen List
