test/test_extract.ml: Alcotest Array Dpp_extract Dpp_gen Dpp_netlist Hashtbl List Option
