test/test_gen.ml: Alcotest Array Dpp_extract Dpp_gen Dpp_geom Dpp_netlist Dpp_util List String
