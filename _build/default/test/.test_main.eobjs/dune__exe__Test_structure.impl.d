test/test_structure.ml: Alcotest Array Dpp_gen Dpp_geom Dpp_netlist Dpp_structure Dpp_wirelen Float List Printf Tutil
