test/test_steiner.ml: Alcotest Array Dpp_steiner Dpp_util Dpp_wirelen List QCheck QCheck_alcotest Tutil
