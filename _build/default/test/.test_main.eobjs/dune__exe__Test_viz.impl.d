test/test_viz.ml: Alcotest Dpp_congest Dpp_gen Dpp_viz Dpp_wirelen Filename List String Sys
