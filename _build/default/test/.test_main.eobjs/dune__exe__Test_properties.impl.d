test/test_properties.ml: Array Dpp_geom Dpp_netlist Dpp_numeric Dpp_place Dpp_steiner Dpp_util Dpp_wirelen Filename List QCheck QCheck_alcotest Sys Tutil Unix
