test/test_timing.ml: Alcotest Array Dpp_gen Dpp_geom Dpp_netlist Dpp_timing Dpp_wirelen Float List
