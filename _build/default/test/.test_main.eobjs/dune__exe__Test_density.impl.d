test/test_density.ml: Alcotest Array Dpp_density Dpp_geom Dpp_netlist Dpp_wirelen List Tutil
