(* Tests for Dpp_density: Grid, Bell potential, Overflow. *)

module Rect = Dpp_geom.Rect
module Types = Dpp_netlist.Types
module Builder = Dpp_netlist.Builder
module Design = Dpp_netlist.Design
module Grid = Dpp_density.Grid
module Bell = Dpp_density.Bell
module Overflow = Dpp_density.Overflow
module Pins = Dpp_wirelen.Pins

let check_float = Alcotest.(check (float 1e-9))

(* ---------------- theta ---------------- *)

let test_theta_shape () =
  let r = 4.0 in
  check_float "peak" 1.0 (Bell.theta ~r 0.0);
  check_float "zero outside" 0.0 (Bell.theta ~r 5.0);
  check_float "half at r/2" 0.5 (Bell.theta ~r 2.0);
  Alcotest.(check bool) "symmetric" true (Bell.theta ~r 1.3 = Bell.theta ~r (-1.3));
  Alcotest.(check bool) "monotone" true
    (Bell.theta ~r 0.5 > Bell.theta ~r 1.5 && Bell.theta ~r 1.5 > Bell.theta ~r 3.0)

let test_theta_c1 () =
  (* continuity of value and derivative at the piece boundary r/2 *)
  let r = 4.0 in
  let eps = 1e-7 in
  Alcotest.(check (float 1e-5)) "value continuous"
    (Bell.theta ~r (2.0 -. eps))
    (Bell.theta ~r (2.0 +. eps));
  Alcotest.(check (float 1e-5)) "derivative continuous"
    (Bell.theta_deriv ~r (2.0 -. eps))
    (Bell.theta_deriv ~r (2.0 +. eps))

let test_theta_deriv_fd () =
  let r = 3.0 in
  List.iter
    (fun x ->
      let eps = 1e-6 in
      let fd = (Bell.theta ~r (x +. eps) -. Bell.theta ~r (x -. eps)) /. (2.0 *. eps) in
      Alcotest.(check (float 1e-4)) "deriv matches fd" fd (Bell.theta_deriv ~r x))
    [ -2.4; -1.0; 0.3; 1.1; 2.7 ]

(* ---------------- Grid ---------------- *)

let test_grid_capacity () =
  let d = Tutil.random_design ~cells:6 ~nets:4 3 in
  let g = Grid.build d ~nx:4 ~ny:3 in
  check_float "full capacity without fixed" (Rect.area d.Design.die) (Grid.total_capacity g)

let test_grid_fixed_subtraction () =
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:40.0 ~yh:20.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let f = Builder.add_cell b ~name:"blk" ~master:"M" ~w:10.0 ~h:10.0 ~kind:Types.Fixed in
  Builder.set_position b f ~x:0.0 ~y:0.0;
  let d = Builder.finish b in
  let g = Grid.build d ~nx:4 ~ny:2 in
  check_float "blocked bin" 0.0 g.Grid.capacity.(0);
  check_float "free bin untouched" 100.0 g.Grid.capacity.(1);
  check_float "total reduced" 700.0 (Grid.total_capacity g)

let test_grid_extra_obstacles () =
  let d = Tutil.random_design ~cells:4 ~nets:2 4 in
  let full = Grid.total_capacity (Grid.build d ~nx:4 ~ny:4) in
  let ob = Rect.make ~xl:0.0 ~yl:0.0 ~xh:10.0 ~yh:10.0 in
  let g = Grid.build ~extra_obstacles:[ ob ] d ~nx:4 ~ny:4 in
  check_float "obstacle subtracted" (full -. 100.0) (Grid.total_capacity g)

let test_grid_indexing () =
  let d = Tutil.random_design 5 in
  let g = Grid.build d ~nx:6 ~ny:6 in
  Alcotest.(check int) "ix clamps" 5 (Grid.ix_of_x g 1e9);
  Alcotest.(check int) "ix clamps low" 0 (Grid.ix_of_x g (-1e9));
  let r = Grid.bin_rect g ~ix:2 ~iy:3 in
  Alcotest.(check bool) "center in rect" true
    (Rect.contains_point r (Dpp_geom.Point.make (Grid.bin_center_x g 2) (Grid.bin_center_y g 3)))

(* ---------------- Bell ---------------- *)

let test_bell_mass_conservation () =
  (* the smoothed field should carry roughly the movable area *)
  let d = Tutil.random_design ~cells:15 ~nets:8 ~die_w:80.0 ~die_rows:8 7 in
  let g = Grid.build d ~nx:10 ~ny:10 in
  let bell = Bell.create d ~grid:g ~target_density:1.0 in
  let cx, cy = Pins.centers_of_design d in
  let phi = Bell.bin_potential bell ~cx ~cy in
  let total = Array.fold_left ( +. ) 0.0 phi in
  let area = Design.movable_area d in
  Alcotest.(check bool) "mass within 15%" true (abs_float (total -. area) < 0.15 *. area)

let test_bell_gradient_fd () =
  List.iter
    (fun seed ->
      let d = Tutil.random_design ~cells:8 ~nets:5 seed in
      let g = Grid.build d ~nx:6 ~ny:6 in
      let bell = Bell.create d ~grid:g ~target_density:0.9 in
      let err =
        Tutil.gradient_error d ~value_grad:(fun ~cx ~cy ~gx ~gy ->
            Bell.value_grad bell ~cx ~cy ~gx ~gy)
      in
      if err > 1e-3 then Alcotest.failf "bell gradient error %.2e (seed %d)" err seed)
    [ 51; 52; 53 ]

let test_bell_value_positive () =
  let d = Tutil.random_design 9 in
  let g = Grid.build d ~nx:8 ~ny:8 in
  let bell = Bell.create d ~grid:g ~target_density:0.9 in
  let cx, cy = Pins.centers_of_design d in
  Alcotest.(check bool) "nonnegative" true (Bell.value bell ~cx ~cy >= 0.0)

let test_bell_spreading_reduces_penalty () =
  (* piling every cell on one spot must cost more than scattering them *)
  let d = Tutil.random_design ~cells:12 ~nets:6 ~die_w:80.0 ~die_rows:8 11 in
  let g = Grid.build d ~nx:8 ~ny:8 in
  let bell = Bell.create d ~grid:g ~target_density:0.9 in
  let cx, cy = Pins.centers_of_design d in
  let spread = Bell.value bell ~cx ~cy in
  let piled_x = Array.map (fun _ -> 40.0) cx in
  let piled_y = Array.map (fun _ -> 40.0) cy in
  let piled = Bell.value bell ~cx:piled_x ~cy:piled_y in
  Alcotest.(check bool) "pile costs more" true (piled > spread)

let test_bell_frozen_excluded () =
  let d = Tutil.random_design ~cells:8 ~nets:4 13 in
  let g = Grid.build d ~nx:6 ~ny:6 in
  let bell_all = Bell.create d ~grid:g ~target_density:1.0 in
  let bell_frozen = Bell.create ~frozen:(fun i -> i < 4) d ~grid:g ~target_density:1.0 in
  let cx, cy = Pins.centers_of_design d in
  let phi_all = Array.fold_left ( +. ) 0.0 (Bell.bin_potential bell_all ~cx ~cy) in
  let phi_frozen = Array.fold_left ( +. ) 0.0 (Bell.bin_potential bell_frozen ~cx ~cy) in
  Alcotest.(check bool) "frozen cells removed from field" true (phi_frozen < phi_all)

(* ---------------- Overflow ---------------- *)

let test_overflow_exact () =
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:20.0 ~yh:20.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let c0 = Builder.add_cell b ~name:"a" ~master:"X" ~w:10.0 ~h:10.0 ~kind:Types.Movable in
  let c1 = Builder.add_cell b ~name:"b" ~master:"X" ~w:10.0 ~h:10.0 ~kind:Types.Movable in
  Builder.set_position b c0 ~x:0.0 ~y:0.0;
  Builder.set_position b c1 ~x:0.0 ~y:0.0;
  (* both cells on bin (0,0) of a 2x2 grid *)
  let d = Builder.finish b in
  let g = Grid.build d ~nx:2 ~ny:2 in
  let cx, cy = Pins.centers_of_design d in
  let usage = Overflow.bin_usage d g ~cx ~cy in
  check_float "bin usage" 200.0 usage.(0);
  check_float "other bins empty" 0.0 usage.(1);
  (* capacity 100/bin at target 1.0: overflow = 100 over area 200 *)
  check_float "overflow" 0.5 (Overflow.total_overflow d g ~target_density:1.0 ~cx ~cy);
  check_float "max density" 2.0 (Overflow.max_density d g ~cx ~cy)

let test_overflow_zero_when_spread () =
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:20.0 ~yh:20.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let c0 = Builder.add_cell b ~name:"a" ~master:"X" ~w:10.0 ~h:10.0 ~kind:Types.Movable in
  let c1 = Builder.add_cell b ~name:"b" ~master:"X" ~w:10.0 ~h:10.0 ~kind:Types.Movable in
  Builder.set_position b c0 ~x:0.0 ~y:0.0;
  Builder.set_position b c1 ~x:10.0 ~y:10.0;
  let d = Builder.finish b in
  let g = Grid.build d ~nx:2 ~ny:2 in
  let cx, cy = Pins.centers_of_design d in
  check_float "no overflow" 0.0 (Overflow.total_overflow d g ~target_density:1.0 ~cx ~cy)

let test_overflow_frozen () =
  let d = Tutil.random_design ~cells:8 15 in
  let g = Grid.build d ~nx:4 ~ny:4 in
  let cx, cy = Pins.centers_of_design d in
  let all = Overflow.bin_usage d g ~cx ~cy in
  let fr = Overflow.bin_usage ~frozen:(fun _ -> true) d g ~cx ~cy in
  Alcotest.(check bool) "all frozen means empty" true (Array.for_all (fun v -> v = 0.0) fr);
  Alcotest.(check bool) "some usage otherwise" true (Array.exists (fun v -> v > 0.0) all)

let suite =
  [
    Alcotest.test_case "theta shape" `Quick test_theta_shape;
    Alcotest.test_case "theta C1" `Quick test_theta_c1;
    Alcotest.test_case "theta deriv fd" `Quick test_theta_deriv_fd;
    Alcotest.test_case "grid capacity" `Quick test_grid_capacity;
    Alcotest.test_case "grid fixed subtraction" `Quick test_grid_fixed_subtraction;
    Alcotest.test_case "grid extra obstacles" `Quick test_grid_extra_obstacles;
    Alcotest.test_case "grid indexing" `Quick test_grid_indexing;
    Alcotest.test_case "bell mass conservation" `Quick test_bell_mass_conservation;
    Alcotest.test_case "bell gradient fd" `Quick test_bell_gradient_fd;
    Alcotest.test_case "bell value positive" `Quick test_bell_value_positive;
    Alcotest.test_case "bell spreading" `Quick test_bell_spreading_reduces_penalty;
    Alcotest.test_case "bell frozen excluded" `Quick test_bell_frozen_excluded;
    Alcotest.test_case "overflow exact" `Quick test_overflow_exact;
    Alcotest.test_case "overflow spread" `Quick test_overflow_zero_when_spread;
    Alcotest.test_case "overflow frozen" `Quick test_overflow_frozen;
  ]
