(* Tests for Dpp_steiner: RMST and the RSMT heuristic. *)

module Mst = Dpp_steiner.Mst
module Rsmt = Dpp_steiner.Rsmt

let check_float = Alcotest.(check (float 1e-9))

let hpwl_of points =
  match Array.length points with
  | 0 -> 0.0
  | _ ->
    let xs = Array.map fst points and ys = Array.map snd points in
    let mx = Array.fold_left max neg_infinity and mn = Array.fold_left min infinity in
    mx xs -. mn xs +. mx ys -. mn ys

let test_mst_known () =
  (* unit square: RMST = 3 edges of length 1 *)
  let square = [| (0.0, 0.0); (1.0, 0.0); (0.0, 1.0); (1.0, 1.0) |] in
  check_float "square mst" 3.0 (Mst.length square);
  let line = [| (0.0, 0.0); (5.0, 0.0); (2.0, 0.0) |] in
  check_float "collinear mst" 5.0 (Mst.length line)

let test_mst_edges () =
  let points = [| (0.0, 0.0); (1.0, 0.0); (2.0, 0.0) |] in
  let edges = Mst.edges points in
  Alcotest.(check int) "n-1 edges" 2 (List.length edges);
  check_float "edge total" 2.0
    (List.fold_left
       (fun acc (a, b) ->
         let xa, ya = points.(a) and xb, yb = points.(b) in
         acc +. abs_float (xa -. xb) +. abs_float (ya -. yb))
       0.0 edges)

let test_mst_degenerate () =
  check_float "empty" 0.0 (Mst.length [||]);
  check_float "single" 0.0 (Mst.length [| (3.0, 4.0) |]);
  check_float "pair" 7.0 (Mst.length [| (0.0, 0.0); (3.0, 4.0) |])

let test_rsmt_exact_small () =
  check_float "two points" 7.0 (Rsmt.length [| (0.0, 0.0); (3.0, 4.0) |]);
  (* three points: RSMT = HPWL (median star) *)
  let three = [| (0.0, 0.0); (4.0, 1.0); (2.0, 5.0) |] in
  check_float "three points" (hpwl_of three) (Rsmt.length three)

let test_rsmt_improves_cross () =
  (* plus-sign configuration: the Steiner point at the center wins *)
  let cross = [| (0.0, 1.0); (2.0, 1.0); (1.0, 0.0); (1.0, 2.0) |] in
  let mst = Mst.length cross in
  let rsmt = Rsmt.length cross in
  Alcotest.(check bool) "steiner beats mst" true (rsmt < mst -. 0.5);
  check_float "optimal cross" 4.0 rsmt

let point_set_gen =
  QCheck.Gen.(
    list_size (2 -- 9)
      (pair (float_range 0.0 100.0) (float_range 0.0 100.0))
    |> map Array.of_list)

let arb_points = QCheck.make point_set_gen

let prop_rsmt_le_mst =
  QCheck.Test.make ~name:"rsmt <= rmst" ~count:200 arb_points (fun pts ->
      Rsmt.length pts <= Mst.length pts +. 1e-6)

let prop_rsmt_ge_hpwl =
  QCheck.Test.make ~name:"rsmt >= hpwl (spanning lower bound)" ~count:200 arb_points
    (fun pts -> Rsmt.length pts >= hpwl_of pts -. 1e-6)

let prop_mst_ratio =
  (* RMST is at most 1.5x the RSMT; our heuristic sits between, so
     heuristic >= 2/3 * RMST *)
  QCheck.Test.make ~name:"rsmt >= 2/3 rmst" ~count:200 arb_points (fun pts ->
      Rsmt.length pts >= (2.0 /. 3.0 *. Mst.length pts) -. 1e-6)

let test_rsmt_degree_fallback () =
  (* above the iterated-1-steiner limit the result must equal the RMST *)
  let rng = Dpp_util.Rng.create 5 in
  let pts =
    Array.init 15 (fun _ -> Dpp_util.Rng.float rng 50.0, Dpp_util.Rng.float rng 50.0)
  in
  check_float "falls back to mst" (Mst.length pts) (Rsmt.length pts)

let test_totals_on_design () =
  let d = Tutil.random_design ~cells:10 ~nets:8 77 in
  let pins = Dpp_wirelen.Pins.build d in
  let cx, cy = Dpp_wirelen.Pins.centers_of_design d in
  let st = Rsmt.total pins ~cx ~cy in
  let hp = Dpp_wirelen.Hpwl.total pins ~cx ~cy in
  Alcotest.(check bool) "steiner >= hpwl" true (st >= hp -. 1e-6);
  Alcotest.(check (float 1e-9)) "convenience wrapper" st (Rsmt.total_of_design d)

let suite =
  [
    Alcotest.test_case "mst known" `Quick test_mst_known;
    Alcotest.test_case "mst edges" `Quick test_mst_edges;
    Alcotest.test_case "mst degenerate" `Quick test_mst_degenerate;
    Alcotest.test_case "rsmt exact small" `Quick test_rsmt_exact_small;
    Alcotest.test_case "rsmt improves cross" `Quick test_rsmt_improves_cross;
    QCheck_alcotest.to_alcotest prop_rsmt_le_mst;
    QCheck_alcotest.to_alcotest prop_rsmt_ge_hpwl;
    QCheck_alcotest.to_alcotest prop_mst_ratio;
    Alcotest.test_case "rsmt degree fallback" `Quick test_rsmt_degree_fallback;
    Alcotest.test_case "design totals" `Quick test_totals_on_design;
  ]
