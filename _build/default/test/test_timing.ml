(* Tests for Dpp_timing: delay model and the lite STA. *)

module Rect = Dpp_geom.Rect
module Types = Dpp_netlist.Types
module Builder = Dpp_netlist.Builder
module Design = Dpp_netlist.Design
module Delay = Dpp_timing.Delay
module Sta = Dpp_timing.Sta
module Pins = Dpp_wirelen.Pins

let check_float = Alcotest.(check (float 1e-6))

(* pad -> inv -> inv -> dff chain with controlled geometry *)
let chain_design () =
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:200.0 ~yh:50.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let cell name master x =
    let id = Builder.add_cell b ~name ~master ~w:2.0 ~h:10.0 ~kind:Types.Movable in
    Builder.set_position b id ~x ~y:0.0;
    id
  in
  let pad = Builder.add_cell b ~name:"pi" ~master:"PAD_IN" ~w:1.0 ~h:1.0 ~kind:Types.Pad in
  Builder.set_position b pad ~x:0.0 ~y:0.0;
  let pad_out = Builder.add_pin b ~cell:pad ~dir:Types.Output ~dx:0.5 ~dy:0.5 () in
  let i1 = cell "i1" "INV" 10.0 in
  let i1_in = Builder.add_pin b ~cell:i1 ~dir:Types.Input ~dx:1.0 ~dy:5.0 () in
  let i1_out = Builder.add_pin b ~cell:i1 ~dir:Types.Output ~dx:1.0 ~dy:5.0 () in
  let i2 = cell "i2" "INV" 50.0 in
  let i2_in = Builder.add_pin b ~cell:i2 ~dir:Types.Input ~dx:1.0 ~dy:5.0 () in
  let i2_out = Builder.add_pin b ~cell:i2 ~dir:Types.Output ~dx:1.0 ~dy:5.0 () in
  let ff = cell "ff" "DFF" 100.0 in
  let ff_d = Builder.add_pin b ~cell:ff ~dir:Types.Input ~dx:1.0 ~dy:5.0 () in
  ignore (Builder.add_net b [ pad_out; i1_in ]);
  ignore (Builder.add_net b [ i1_out; i2_in ]);
  ignore (Builder.add_net b [ i2_out; ff_d ]);
  Builder.finish b, i1, i2, ff

let test_delay_table () =
  check_float "inv" 1.0 (Delay.default.Delay.gate_delay "INV");
  check_float "fa" 3.0 (Delay.default.Delay.gate_delay "FA");
  check_float "unknown" 1.5 (Delay.default.Delay.gate_delay "WHATEVER");
  Alcotest.(check bool) "dff sequential" true (Delay.is_sequential "DFF");
  Alcotest.(check bool) "inv combinational" false (Delay.is_sequential "INV")

let test_sta_chain_delay () =
  let d, _i1, _i2, ff = chain_design () in
  let sta = Sta.build d in
  let cx, cy = Pins.centers_of_design d in
  let r = Sta.analyze sta ~cx ~cy in
  (* hand computation (wire delay 0.05/unit, pin offsets at cell center x):
     pad launch = gate(pad) = 1.5 (unknown master)
     pad(0.5) -> i1(11): wire 0.05 * (10.5 + 4.5y) ... use the reported
     value sanity-wise instead: the critical endpoint must be the DFF *)
  Alcotest.(check bool) "endpoint is the dff" true
    (match List.rev r.Sta.critical_path with last :: _ -> last = ff | [] -> false);
  Alcotest.(check bool) "delay positive" true (r.Sta.critical_delay > 3.0);
  Alcotest.(check int) "no cycles" 0 r.Sta.broken_cycle_edges;
  (* path: pad -> i1 -> i2 -> ff *)
  Alcotest.(check int) "path length" 4 (List.length r.Sta.critical_path)

let test_sta_wire_delay_scales () =
  let d, _, i2, _ = chain_design () in
  let sta = Sta.build d in
  let cx, cy = Pins.centers_of_design d in
  let r1 = Sta.analyze sta ~cx ~cy in
  (* move i2 further away: delay must increase *)
  let cx' = Array.copy cx in
  cx'.(i2) <- cx'.(i2) +. 80.0;
  let r2 = Sta.analyze sta ~cx:cx' ~cy in
  Alcotest.(check bool) "longer wires, longer delay" true
    (r2.Sta.critical_delay > r1.Sta.critical_delay +. 1.0)

let test_sta_zero_wire_delay () =
  let d, _, _, _ = chain_design () in
  let delay = Delay.with_wire_delay 0.0 Delay.default in
  let sta = Sta.build ~delay d in
  let cx, cy = Pins.centers_of_design d in
  let r = Sta.analyze sta ~cx ~cy in
  (* pure gate delays: launch(pad)=1.5, +1 (i1), +1 (i2); arrival at dff *)
  check_float "gate-only delay" 3.5 r.Sta.critical_delay

let test_sta_criticality_bounds () =
  let d = Dpp_gen.Compose.build (List.nth Dpp_gen.Presets.suite 4) in
  let sta = Sta.build d in
  let cx, cy = Pins.centers_of_design d in
  let r = Sta.analyze sta ~cx ~cy in
  Array.iteri
    (fun n c ->
      if c < 0.0 || c > 1.0 then Alcotest.failf "criticality %f out of bounds (net %d)" c n)
    r.Sta.net_criticality;
  (* some net must be fully critical *)
  Alcotest.(check bool) "a critical net exists" true
    (Array.exists (fun c -> c > 0.99) r.Sta.net_criticality);
  Alcotest.(check bool) "delay positive" true (r.Sta.critical_delay > 0.0)

let test_sta_cycle_breaking () =
  (* a 2-inverter combinational loop must not hang the analysis *)
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:100.0 ~yh:50.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let mk name =
    let id = Builder.add_cell b ~name ~master:"INV" ~w:2.0 ~h:10.0 ~kind:Types.Movable in
    let i = Builder.add_pin b ~cell:id ~dir:Types.Input () in
    let o = Builder.add_pin b ~cell:id ~dir:Types.Output () in
    id, i, o
  in
  let _a, ai, ao = mk "a" in
  let _b, bi, bo = mk "b" in
  ignore (Builder.add_net b [ ao; bi ]);
  ignore (Builder.add_net b [ bo; ai ]);
  let d = Builder.finish b in
  let sta = Sta.build d in
  let cx, cy = Pins.centers_of_design d in
  let r = Sta.analyze sta ~cx ~cy in
  Alcotest.(check bool) "cycle broken" true (r.Sta.broken_cycle_edges >= 1);
  Alcotest.(check bool) "terminates with finite delay" true
    (Float.is_finite r.Sta.critical_delay)

let test_weighted_design () =
  let d = Dpp_gen.Compose.build (List.nth Dpp_gen.Presets.suite 4) in
  let sta = Sta.build d in
  let cx, cy = Pins.centers_of_design d in
  let r = Sta.analyze sta ~cx ~cy in
  let w = Sta.weighted_design ~alpha:2.0 d sta r in
  Alcotest.(check int) "same nets" (Design.num_nets d) (Design.num_nets w);
  let raised = ref 0 in
  for n = 0 to Design.num_nets d - 1 do
    let w0 = (Design.net d n).Types.n_weight and w1 = (Design.net w n).Types.n_weight in
    if w1 < w0 -. 1e-9 then Alcotest.failf "net %d weight decreased" n;
    if w1 > w0 +. 1e-9 then incr raised;
    if w1 > w0 *. 3.0 +. 1e-9 then Alcotest.failf "net %d weight above 1+alpha bound" n
  done;
  Alcotest.(check bool) "some weights raised" true (!raised > 0);
  (* original design untouched *)
  Alcotest.(check (float 1e-12)) "input unchanged" 1.0 (Design.net d 0).Types.n_weight

let suite =
  [
    Alcotest.test_case "delay table" `Quick test_delay_table;
    Alcotest.test_case "sta chain" `Quick test_sta_chain_delay;
    Alcotest.test_case "sta wire delay scales" `Quick test_sta_wire_delay_scales;
    Alcotest.test_case "sta gate-only delay" `Quick test_sta_zero_wire_delay;
    Alcotest.test_case "sta criticality bounds" `Quick test_sta_criticality_bounds;
    Alcotest.test_case "sta cycle breaking" `Quick test_sta_cycle_breaking;
    Alcotest.test_case "weighted design" `Quick test_weighted_design;
  ]
