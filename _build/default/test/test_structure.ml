(* Tests for Dpp_structure: Dgroup geometry, the alignment potential and
   group snapping. *)

module Rect = Dpp_geom.Rect
module Types = Dpp_netlist.Types
module Design = Dpp_netlist.Design
module Groups = Dpp_netlist.Groups
module Builder = Dpp_netlist.Builder
module Dgroup = Dpp_structure.Dgroup
module Alignment = Dpp_structure.Alignment
module Shaping = Dpp_structure.Shaping
module Pins = Dpp_wirelen.Pins
module Compose = Dpp_gen.Compose

(* A design holding a labelled 4x3 array of uniform cells plus spares. *)
let array_design () =
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:200.0 ~yh:100.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let mk name =
    let id = Builder.add_cell b ~name ~master:"X" ~w:4.0 ~h:10.0 ~kind:Types.Movable in
    let p1 = Builder.add_pin b ~cell:id ~dir:Types.Input ~dx:1.0 ~dy:5.0 () in
    let p2 = Builder.add_pin b ~cell:id ~dir:Types.Output ~dx:3.0 ~dy:5.0 () in
    id, p1, p2
  in
  let rows =
    Array.init 4 (fun s -> Array.init 3 (fun k -> mk (Printf.sprintf "g%d_%d" s k)))
  in
  (* slice-local chains so the design has internal nets *)
  Array.iter
    (fun row ->
      let _, _, o0 = row.(0) and _, i1, o1 = row.(1) and _, i2, _ = row.(2) in
      ignore (Builder.add_net b [ o0; i1 ]);
      ignore (Builder.add_net b [ o1; i2 ]))
    rows;
  let id_rows = Array.map (Array.map (fun (id, _, _) -> id)) rows in
  Builder.add_group b (Groups.make "arr" id_rows);
  (* a couple of spare movables so the design is not only the group *)
  for k = 0 to 3 do
    ignore (Builder.add_cell b ~name:(Printf.sprintf "s%d" k) ~master:"Y" ~w:3.0 ~h:10.0 ~kind:Types.Movable)
  done;
  Builder.finish b

let the_group d = List.hd d.Design.groups

(* ---------------- Dgroup ---------------- *)

let test_dgroup_build () =
  let d = array_design () in
  let dg = Dgroup.build ~fold:1 d (the_group d) in
  Alcotest.(check int) "members" 12 (Array.length dg.Dgroup.cells);
  Alcotest.(check (float 1e-9)) "height" 40.0 dg.Dgroup.height;
  Alcotest.(check (float 1e-9)) "width (3 packed columns)" 12.0 dg.Dgroup.width;
  (* offsets must be inside the footprint *)
  Array.iteri
    (fun i _ ->
      Alcotest.(check bool) "offset inside" true
        (dg.Dgroup.off_x.(i) >= 0.0
        && dg.Dgroup.off_x.(i) <= dg.Dgroup.width
        && dg.Dgroup.off_y.(i) >= 0.0
        && dg.Dgroup.off_y.(i) <= dg.Dgroup.height))
    dg.Dgroup.cells

let test_dgroup_fold () =
  let d = array_design () in
  let dg1 = Dgroup.build ~fold:1 d (the_group d) in
  let dg2 = Dgroup.build ~fold:2 d (the_group d) in
  Alcotest.(check (float 1e-9)) "folded height halves" (dg1.Dgroup.height /. 2.0) dg2.Dgroup.height;
  Alcotest.(check bool) "folded width grows" true (dg2.Dgroup.width > dg1.Dgroup.width)

let test_dgroup_alignment_error_zero_at_array () =
  let d = array_design () in
  let dg = Dgroup.build ~fold:1 d (the_group d) in
  let nc = Design.num_cells d in
  let cx = Array.make nc 0.0 and cy = Array.make nc 0.0 in
  (* place members exactly on the idealized array at origin (50, 20) *)
  Array.iteri
    (fun i c ->
      cx.(c) <- 50.0 +. dg.Dgroup.off_x.(i);
      cy.(c) <- 20.0 +. dg.Dgroup.off_y.(i))
    dg.Dgroup.cells;
  Alcotest.(check (float 1e-9)) "zero error" 0.0 (Dgroup.alignment_error dg ~cx ~cy);
  let ox, oy = Dgroup.origin_of_positions dg ~cx ~cy in
  Alcotest.(check (float 1e-9)) "origin x recovered" 50.0 ox;
  Alcotest.(check (float 1e-9)) "origin y recovered" 20.0 oy

let test_dgroup_internal_coupling () =
  let d = array_design () in
  (* all nets in this toy design are internal to the group *)
  Alcotest.(check (float 1e-9)) "fully internal" 1.0 (Dgroup.internal_coupling d (the_group d))

let test_dgroup_slice_span () =
  let d = array_design () in
  (* all nets are slice-local: span 0 *)
  Alcotest.(check (float 1e-9)) "slice-local" 0.0 (Dgroup.slice_span d (the_group d))

(* ---------------- Alignment ---------------- *)

let test_alignment_zero_and_positive () =
  let d = array_design () in
  let dg = Dgroup.build ~fold:1 d (the_group d) in
  let nc = Design.num_cells d in
  let cx = Array.make nc 0.0 and cy = Array.make nc 0.0 in
  Array.iteri
    (fun i c ->
      cx.(c) <- 10.0 +. dg.Dgroup.off_x.(i);
      cy.(c) <- 10.0 +. dg.Dgroup.off_y.(i))
    dg.Dgroup.cells;
  Alcotest.(check (float 1e-9)) "zero at perfect array" 0.0 (Alignment.value [ dg ] ~cx ~cy);
  (* perturb one member *)
  cx.(dg.Dgroup.cells.(0)) <- cx.(dg.Dgroup.cells.(0)) +. 5.0;
  Alcotest.(check bool) "positive after perturbation" true (Alignment.value [ dg ] ~cx ~cy > 1.0)

let test_alignment_translation_invariant () =
  let d = array_design () in
  let dg = Dgroup.build d (the_group d) in
  let cx, cy = Pins.centers_of_design d in
  let v1 = Alignment.value [ dg ] ~cx ~cy in
  let cx' = Array.map (fun x -> x +. 31.0) cx in
  let v2 = Alignment.value [ dg ] ~cx:cx' ~cy in
  Alcotest.(check (float 1e-6)) "translation invariant" v1 v2

let test_alignment_gradient_fd () =
  let d = array_design () in
  let dg = Dgroup.build d (the_group d) in
  let err =
    Tutil.gradient_error d ~value_grad:(fun ~cx ~cy ~gx ~gy ->
        Alignment.value_grad [ dg ] ~cx ~cy ~gx ~gy)
  in
  if err > 1e-5 then Alcotest.failf "alignment gradient error %.2e" err

(* ---------------- Shaping ---------------- *)

let realistic_design () =
  Compose.build
    {
      Compose.sp_name = "shape";
      sp_seed = 61;
      sp_blocks = [ Compose.Adder 16; Regbank 16 ];
      sp_random_cells = 300;
      sp_utilization = 0.7;
    }

let test_snap_geometry () =
  let d = realistic_design () in
  let dgs = Dgroup.build_all d d.Design.groups in
  let cx, cy = Pins.centers_of_design d in
  let placed = Shaping.snap d dgs ~cx ~cy in
  Alcotest.(check int) "all groups snapped" (List.length dgs) (List.length placed);
  (* footprints: inside the die, on grid, mutually disjoint *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "inside die" true
        (Rect.contains_rect (Rect.expand d.Design.die 1e-6) p.Shaping.rect);
      let q = (p.Shaping.origin_y -. d.Design.die.Rect.yl) /. d.Design.row_height in
      Alcotest.(check bool) "row-aligned origin" true (abs_float (q -. Float.round q) < 1e-6))
    placed;
  let rec pairwise = function
    | [] -> ()
    | p :: rest ->
      List.iter
        (fun q ->
          if Rect.overlaps p.Shaping.rect q.Shaping.rect then
            Alcotest.fail "snapped groups overlap")
        rest;
      pairwise rest
  in
  pairwise placed

let test_snap_apply () =
  let d = realistic_design () in
  let dgs = Dgroup.build_all d d.Design.groups in
  let cx, cy = Pins.centers_of_design d in
  let placed = Shaping.snap d dgs ~cx ~cy in
  List.iter (fun p -> Shaping.apply p ~cx ~cy) placed;
  (* after apply the alignment error of every snapped group is zero *)
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9)) "exact array after apply" 0.0
        (Dgroup.alignment_error p.Shaping.dgroup ~cx ~cy))
    placed

let test_snap_oversized_left_soft () =
  let d = realistic_design () in
  let dgs = Dgroup.build_all d d.Design.groups in
  let cx, cy = Pins.centers_of_design d in
  let placed = Shaping.snap ~max_die_fraction:0.0001 d dgs ~cx ~cy in
  Alcotest.(check int) "nothing snapped under a tiny cap" 0 (List.length placed)

let suite =
  [
    Alcotest.test_case "dgroup build" `Quick test_dgroup_build;
    Alcotest.test_case "dgroup fold" `Quick test_dgroup_fold;
    Alcotest.test_case "dgroup zero error at array" `Quick test_dgroup_alignment_error_zero_at_array;
    Alcotest.test_case "dgroup internal coupling" `Quick test_dgroup_internal_coupling;
    Alcotest.test_case "dgroup slice span" `Quick test_dgroup_slice_span;
    Alcotest.test_case "alignment zero/positive" `Quick test_alignment_zero_and_positive;
    Alcotest.test_case "alignment translation invariant" `Quick test_alignment_translation_invariant;
    Alcotest.test_case "alignment gradient fd" `Quick test_alignment_gradient_fd;
    Alcotest.test_case "snap geometry" `Quick test_snap_geometry;
    Alcotest.test_case "snap apply" `Quick test_snap_apply;
    Alcotest.test_case "snap oversized soft" `Quick test_snap_oversized_left_soft;
  ]
