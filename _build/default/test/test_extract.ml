(* Tests for Dpp_extract: net classification, signatures, labels, the
   slicer and the quality metrics. *)

module Design = Dpp_netlist.Design
module Groups = Dpp_netlist.Groups
module Hypergraph = Dpp_netlist.Hypergraph
module Netclass = Dpp_extract.Netclass
module Signature = Dpp_extract.Signature
module Slicer = Dpp_extract.Slicer
module Exmetrics = Dpp_extract.Exmetrics
module Compose = Dpp_gen.Compose

let adder_design bits glue =
  Compose.build
    {
      Compose.sp_name = "xadd";
      sp_seed = 31;
      sp_blocks = [ Compose.Adder bits ];
      sp_random_cells = glue;
      sp_utilization = 0.7;
    }

let alu_design () =
  Compose.build
    {
      Compose.sp_name = "xalu";
      sp_seed = 32;
      sp_blocks = [ Compose.Alu 16 ];
      sp_random_cells = 200;
      sp_utilization = 0.7;
    }

(* ---------------- Netclass ---------------- *)

let test_netclass () =
  let d = alu_design () in
  let h = Hypergraph.build d in
  let nc = Netclass.classify d h ~max_data_degree:5 in
  let counts = Hashtbl.create 4 in
  Array.iteri
    (fun n _ ->
      let k = Netclass.kind nc n in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    d.Design.nets;
  let get k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  Alcotest.(check bool) "data nets dominate" true (get Netclass.Data > get Netclass.Control);
  Alcotest.(check bool) "control nets exist (op selects)" true (get Netclass.Control >= 2)

let test_netclass_bad_degree () =
  let d = alu_design () in
  let h = Hypergraph.build d in
  Alcotest.(check bool) "degree < 2 rejected" true
    (try
       ignore (Netclass.classify d h ~max_data_degree:1);
       false
     with Invalid_argument _ -> true)

(* ---------------- Signature ---------------- *)

let test_signature_replicas_cohere () =
  (* in a clean adder, interior slices' cells of the same stage must share
     a class: each stage contributes a class of size close to [bits] *)
  let d = adder_design 16 100 in
  let h = Hypergraph.build d in
  let nc = Netclass.classify d h ~max_data_degree:5 in
  let sg = Signature.compute d h nc ~iterations:3 in
  let truth = List.hd d.Design.groups in
  (* count distinct classes among the adder's first-stage cells *)
  let stage_cells k =
    Array.to_list (Array.map (fun row -> row.(k)) truth.Groups.g_rows)
    |> List.filter (fun c -> c >= 0)
  in
  List.iter
    (fun k ->
      let classes = List.map (Signature.class_of sg) (stage_cells k) |> List.sort_uniq compare in
      (* boundary bits may differ; interior must collapse to few classes *)
      if List.length classes > 4 then
        Alcotest.failf "stage %d fragments into %d classes" k (List.length classes))
    [ 0; 1; 2; 3; 4 ]

let test_signature_fixed_excluded () =
  let d = adder_design 8 50 in
  let h = Hypergraph.build d in
  let nc = Netclass.classify d h ~max_data_degree:5 in
  let sg = Signature.compute d h nc ~iterations:2 in
  Array.iter
    (fun i -> Alcotest.(check int) "pad has no class" (-1) (Signature.class_of sg i))
    (Design.fixed_ids d)

let test_signature_pin_class_stable () =
  let d = adder_design 8 50 in
  (* equal pins hash equally, distinct offsets differ *)
  let p0 = Signature.pin_class d 0 and p0' = Signature.pin_class d 0 in
  Alcotest.(check int) "deterministic" p0 p0'

(* ---------------- Slicer ---------------- *)

let test_extract_adder_recall () =
  let d = adder_design 16 150 in
  let r = Slicer.run d Slicer.default_config in
  let m = Exmetrics.compare_to_truth ~truth:d.Design.groups ~found:r.Slicer.groups in
  Alcotest.(check bool) "high recall on a clean adder" true (m.Exmetrics.recall > 0.8);
  Alcotest.(check bool) "high precision" true (m.Exmetrics.precision > 0.9)

let test_extract_alu_control_seeds () =
  let d = alu_design () in
  let r = Slicer.run d Slicer.default_config in
  Alcotest.(check bool) "control seeds used" true (r.Slicer.seeds_control > 0);
  let m = Exmetrics.compare_to_truth ~truth:d.Design.groups ~found:r.Slicer.groups in
  Alcotest.(check bool) "recall > 0.8" true (m.Exmetrics.recall > 0.8)

let test_extract_pure_glue () =
  (* no datapath: the extractor must stand down (precision guard) *)
  let d =
    Compose.build
      {
        Compose.sp_name = "glue";
        sp_seed = 33;
        sp_blocks = [ Compose.Adder 4 ];
        sp_random_cells = 800;
        sp_utilization = 0.7;
      }
  in
  let r = Slicer.run d Slicer.default_config in
  let m = Exmetrics.compare_to_truth ~truth:d.Design.groups ~found:r.Slicer.groups in
  (* whatever is found must be mostly real datapath *)
  Alcotest.(check bool) "precision stays high" true (m.Exmetrics.precision > 0.8)

let test_extract_group_shapes () =
  let d = adder_design 16 150 in
  let cfg = Slicer.default_config in
  let r = Slicer.run d cfg in
  List.iter
    (fun g ->
      Alcotest.(check bool) "min slices respected" true
        (Groups.num_slices g >= cfg.Slicer.min_slices);
      Alcotest.(check bool) "min stages respected" true
        (Groups.num_stages g >= cfg.Slicer.min_stages))
    r.Slicer.groups

let test_extract_no_cell_in_two_groups () =
  let d = Compose.build (List.nth Dpp_gen.Presets.suite 5) in
  let r = Slicer.run d Slicer.default_config in
  let seen = Hashtbl.create 1024 in
  List.iter
    (fun g ->
      Array.iter
        (fun c ->
          if Hashtbl.mem seen c then Alcotest.failf "cell %d in two groups" c;
          Hashtbl.add seen c ())
        (Groups.cell_ids g))
    r.Slicer.groups

let test_extract_strict_config_finds_less () =
  let d = adder_design 16 150 in
  let default = Slicer.run d Slicer.default_config in
  let strict = Slicer.run d { Slicer.default_config with Slicer.min_slices = 64 } in
  let cells gs =
    List.fold_left (fun acc g -> acc + Groups.cell_count g) 0 gs
  in
  Alcotest.(check bool) "strict finds fewer cells" true
    (cells strict.Slicer.groups <= cells default.Slicer.groups);
  Alcotest.(check int) "min_slices 64 finds nothing" 0 (List.length strict.Slicer.groups)

let test_extract_deterministic () =
  let d = alu_design () in
  let r1 = Slicer.run d Slicer.default_config in
  let r2 = Slicer.run d Slicer.default_config in
  Alcotest.(check int) "same group count" (List.length r1.Slicer.groups)
    (List.length r2.Slicer.groups);
  List.iter2
    (fun a b ->
      if Groups.jaccard a b < 1.0 then Alcotest.fail "extraction not deterministic")
    r1.Slicer.groups r2.Slicer.groups

(* ---------------- Exmetrics ---------------- *)

let test_metrics_perfect () =
  let g = Groups.make "g" [| [| 0; 1 |]; [| 2; 3 |] |] in
  let m = Exmetrics.compare_to_truth ~truth:[ g ] ~found:[ g ] in
  Alcotest.(check (float 1e-9)) "precision" 1.0 m.Exmetrics.precision;
  Alcotest.(check (float 1e-9)) "recall" 1.0 m.Exmetrics.recall;
  Alcotest.(check (float 1e-9)) "f1" 1.0 m.Exmetrics.f1;
  Alcotest.(check int) "matched" 1 m.Exmetrics.matched_groups

let test_metrics_partial () =
  let truth = Groups.make "t" [| [| 0; 1 |]; [| 2; 3 |] |] in
  let found = Groups.make "f" [| [| 0; 1 |]; [| 4; 5 |] |] in
  let m = Exmetrics.compare_to_truth ~truth:[ truth ] ~found:[ found ] in
  Alcotest.(check (float 1e-9)) "precision" 0.5 m.Exmetrics.precision;
  Alcotest.(check (float 1e-9)) "recall" 0.5 m.Exmetrics.recall;
  Alcotest.(check int) "not matched (jaccard 1/3)" 0 m.Exmetrics.matched_groups

let test_metrics_empty () =
  let m = Exmetrics.compare_to_truth ~truth:[] ~found:[] in
  Alcotest.(check (float 1e-9)) "empty precision" 1.0 m.Exmetrics.precision;
  Alcotest.(check (float 1e-9)) "empty recall" 1.0 m.Exmetrics.recall

let suite =
  [
    Alcotest.test_case "netclass" `Quick test_netclass;
    Alcotest.test_case "netclass bad degree" `Quick test_netclass_bad_degree;
    Alcotest.test_case "signature replicas cohere" `Quick test_signature_replicas_cohere;
    Alcotest.test_case "signature fixed excluded" `Quick test_signature_fixed_excluded;
    Alcotest.test_case "signature pin class" `Quick test_signature_pin_class_stable;
    Alcotest.test_case "extract adder recall" `Quick test_extract_adder_recall;
    Alcotest.test_case "extract alu control seeds" `Quick test_extract_alu_control_seeds;
    Alcotest.test_case "extract pure glue precision" `Quick test_extract_pure_glue;
    Alcotest.test_case "extract group shapes" `Quick test_extract_group_shapes;
    Alcotest.test_case "extract disjoint groups" `Slow test_extract_no_cell_in_two_groups;
    Alcotest.test_case "extract strict config" `Quick test_extract_strict_config_finds_less;
    Alcotest.test_case "extract deterministic" `Quick test_extract_deterministic;
    Alcotest.test_case "metrics perfect" `Quick test_metrics_perfect;
    Alcotest.test_case "metrics partial" `Quick test_metrics_partial;
    Alcotest.test_case "metrics empty" `Quick test_metrics_empty;
  ]
