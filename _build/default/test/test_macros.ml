(* Failure-injection / fixed-obstacle coverage: designs with fixed macro
   blockages must flow end-to-end with legality preserved, and the
   substrates must account for the blocked capacity. *)

module Rect = Dpp_geom.Rect
module Types = Dpp_netlist.Types
module Builder = Dpp_netlist.Builder
module Design = Dpp_netlist.Design
module Pins = Dpp_wirelen.Pins
module Legality = Dpp_place.Legality

(* a design with a central fixed macro and a ring of connected movables *)
let macro_design ~cells ~seed =
  let rng = Dpp_util.Rng.create seed in
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:120.0 ~yh:120.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let macro = Builder.add_cell b ~name:"ram0" ~master:"RAM" ~w:40.0 ~h:40.0 ~kind:Types.Fixed in
  Builder.set_position b macro ~x:40.0 ~y:40.0;
  let macro_pin = Builder.add_pin b ~cell:macro ~dir:Types.Output ~dx:20.0 ~dy:20.0 () in
  let prev_out = ref macro_pin in
  for k = 0 to cells - 1 do
    let w = float_of_int (2 + Dpp_util.Rng.int rng 4) in
    let id =
      Builder.add_cell b ~name:(Printf.sprintf "c%d" k) ~master:"INV" ~w ~h:10.0
        ~kind:Types.Movable
    in
    let i = Builder.add_pin b ~cell:id ~dir:Types.Input () in
    let o = Builder.add_pin b ~cell:id ~dir:Types.Output () in
    ignore (Builder.add_net b [ !prev_out; i ]);
    prev_out := o
  done;
  Builder.finish b

let small_cfg =
  { Dpp_core.Config.baseline with Dpp_core.Config.gp_rounds = 8; gp_inner_iters = 25 }

let test_grid_capacity_blocked () =
  let d = macro_design ~cells:60 ~seed:3 in
  let g = Dpp_density.Grid.build d ~nx:12 ~ny:12 in
  Alcotest.(check (float 1e-6)) "capacity excludes the macro"
    (Rect.area d.Design.die -. 1600.0)
    (Dpp_density.Grid.total_capacity g)

let test_flow_avoids_macro () =
  let d = macro_design ~cells:150 ~seed:4 in
  let r = Dpp_core.Flow.run d small_cfg in
  let cx, cy = Pins.centers_of_design r.Dpp_core.Flow.design in
  let violations = Legality.check r.Dpp_core.Flow.design ~cx ~cy in
  if violations <> [] then
    Alcotest.failf "%d violations; first: %s" (List.length violations)
      (Format.asprintf "%a" (Legality.pp_violation r.Dpp_core.Flow.design) (List.hd violations))

let test_sa_flow_with_macro () =
  (* structure-aware on a macro design without groups must equal baseline
     and stay legal *)
  let d = macro_design ~cells:150 ~seed:5 in
  let base, sa =
    Dpp_core.Flow.run_both d { small_cfg with Dpp_core.Config.mode = Dpp_core.Config.Structure_aware }
  in
  Alcotest.(check (float 1e-6)) "identical without groups" base.Dpp_core.Flow.hpwl_final
    sa.Dpp_core.Flow.hpwl_final

let test_macro_chain_hugs_macro () =
  (* the chain hangs off the macro's pin: placement should keep the chain's
     first cells near the macro, i.e. final HPWL far below the worst case *)
  let d = macro_design ~cells:100 ~seed:6 in
  let r = Dpp_core.Flow.run d small_cfg in
  let die_span = Rect.width d.Design.die +. Rect.height d.Design.die in
  Alcotest.(check bool) "chain stays local" true
    (r.Dpp_core.Flow.hpwl_final < 0.5 *. float_of_int 101 *. die_span)

let test_validate_macro_overfull () =
  (* macro so large the movables cannot fit: flow must refuse *)
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:50.0 ~yh:50.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let m = Builder.add_cell b ~name:"big" ~master:"RAM" ~w:48.0 ~h:50.0 ~kind:Types.Fixed in
  Builder.set_position b m ~x:0.0 ~y:0.0;
  for k = 0 to 20 do
    ignore
      (Builder.add_cell b ~name:(Printf.sprintf "c%d" k) ~master:"INV" ~w:3.0 ~h:10.0
         ~kind:Types.Movable)
  done;
  let d = Builder.finish b in
  Alcotest.(check bool) "flow refuses" true
    (try
       ignore (Dpp_core.Flow.run d small_cfg);
       false
     with Dpp_core.Flow.Invalid_design _ -> true)

let suite =
  [
    Alcotest.test_case "grid capacity blocked" `Quick test_grid_capacity_blocked;
    Alcotest.test_case "flow avoids macro" `Slow test_flow_avoids_macro;
    Alcotest.test_case "sa flow with macro" `Slow test_sa_flow_with_macro;
    Alcotest.test_case "macro chain locality" `Slow test_macro_chain_hugs_macro;
    Alcotest.test_case "overfull macro refused" `Quick test_validate_macro_overfull;
  ]

(* appended: movable multi-row macro (mixed-size) coverage *)

let ram_spec =
  {
    Dpp_gen.Compose.sp_name = "ramtest";
    sp_seed = 77;
    sp_blocks =
      [ Dpp_gen.Compose.Ram (30, 6, 8); Ram (24, 4, 8); Regbank 8; Adder 8 ];
    sp_random_cells = 400;
    sp_utilization = 0.6;
  }

let test_ram_block () =
  let d = Dpp_gen.Compose.build ram_spec in
  Alcotest.(check bool) "validates" true
    (Dpp_netlist.Validate.is_clean (Dpp_netlist.Validate.check d));
  let macros = Dpp_structure.Dgroup.movable_macros d in
  Alcotest.(check int) "two movable macros" 2 (List.length macros);
  (* only the bit-sliced blocks carry ground truth *)
  Alcotest.(check int) "groups exclude rams" 2 (List.length d.Dpp_netlist.Design.groups)

let test_mixed_size_flow_legal () =
  let d = Dpp_gen.Compose.build ram_spec in
  List.iter
    (fun mode ->
      let cfg = { small_cfg with Dpp_core.Config.mode } in
      let r = Dpp_core.Flow.run d cfg in
      let cx, cy = Pins.centers_of_design r.Dpp_core.Flow.design in
      let v = Legality.check r.Dpp_core.Flow.design ~cx ~cy in
      if v <> [] then
        Alcotest.failf "%s: %d violations; first: %s"
          (Dpp_core.Config.mode_to_string mode)
          (List.length v)
          (Format.asprintf "%a" (Legality.pp_violation r.Dpp_core.Flow.design) (List.hd v)))
    [ Dpp_core.Config.Baseline; Dpp_core.Config.Structure_aware ]

let test_macro_dgroup_shape () =
  let d = Dpp_gen.Compose.build ram_spec in
  match Dpp_structure.Dgroup.movable_macros d with
  | i :: _ ->
    let dg = Dpp_structure.Dgroup.of_movable_macro d i in
    let c = Design.cell d i in
    Alcotest.(check (float 1e-9)) "width" c.Types.c_width dg.Dpp_structure.Dgroup.width;
    Alcotest.(check (float 1e-9)) "height" c.Types.c_height dg.Dpp_structure.Dgroup.height;
    Alcotest.(check int) "one member" 1 (Array.length dg.Dpp_structure.Dgroup.cells)
  | [] -> Alcotest.fail "no macros found"

let suite =
  suite
  @ [
      Alcotest.test_case "ram block" `Quick test_ram_block;
      Alcotest.test_case "mixed-size flow legal" `Slow test_mixed_size_flow_legal;
      Alcotest.test_case "macro dgroup shape" `Quick test_macro_dgroup_shape;
    ]
