(* Tests for Dpp_wirelen: HPWL, LSE, WA — exact values, model bounds, and
   finite-difference gradient verification. *)

module Rect = Dpp_geom.Rect
module Types = Dpp_netlist.Types
module Builder = Dpp_netlist.Builder
module Design = Dpp_netlist.Design
module Pins = Dpp_wirelen.Pins
module Hpwl = Dpp_wirelen.Hpwl
module Lse = Dpp_wirelen.Lse
module Wa = Dpp_wirelen.Wa
module Model = Dpp_wirelen.Model

let check_float = Alcotest.(check (float 1e-9))

(* Two cells with one pin each at known spots, one net. *)
let two_point_design () =
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:100.0 ~yh:50.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let mk name x y =
    let id = Builder.add_cell b ~name ~master:"X" ~w:2.0 ~h:10.0 ~kind:Types.Movable in
    let p = Builder.add_pin b ~cell:id ~dir:Types.Input ~dx:1.0 ~dy:5.0 () in
    Builder.set_position b id ~x ~y;
    p
  in
  let p0 = mk "a" 0.0 0.0 in
  let p1 = mk "b" 30.0 20.0 in
  ignore (Builder.add_net b [ p0; p1 ]);
  Builder.finish b

let test_hpwl_two_points () =
  let d = two_point_design () in
  (* pin positions (1,5) and (31,25): HPWL = 30 + 20 *)
  check_float "hpwl" 50.0 (Hpwl.total_of_design d)

let test_hpwl_weighted () =
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:100.0 ~yh:50.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let mk name x =
    let id = Builder.add_cell b ~name ~master:"X" ~w:2.0 ~h:10.0 ~kind:Types.Movable in
    let p = Builder.add_pin b ~cell:id ~dir:Types.Input ~dx:0.0 ~dy:0.0 () in
    Builder.set_position b id ~x ~y:0.0;
    p
  in
  let p0 = mk "a" 0.0 and p1 = mk "b" 10.0 in
  ignore (Builder.add_net b ~weight:3.0 [ p0; p1 ]);
  let d = Builder.finish b in
  check_float "weighted hpwl" 30.0 (Hpwl.total_of_design d)

let test_hpwl_degenerate () =
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:100.0 ~yh:50.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let id = Builder.add_cell b ~name:"a" ~master:"X" ~w:2.0 ~h:10.0 ~kind:Types.Movable in
  let p = Builder.add_pin b ~cell:id ~dir:Types.Output () in
  ignore (Builder.add_net b [ p ]);
  let d = Builder.finish b in
  check_float "single-pin net is 0" 0.0 (Hpwl.total_of_design d)

(* ---------------- model bounds ---------------- *)

let bounds_design seed = Tutil.random_design ~cells:10 ~nets:8 seed

let test_lse_upper_bound () =
  List.iter
    (fun seed ->
      let d = bounds_design seed in
      let pins = Pins.build d in
      let cx, cy = Pins.centers_of_design d in
      List.iter
        (fun gamma ->
          let lse = Lse.value pins ~gamma ~cx ~cy in
          let hp = Hpwl.total pins ~cx ~cy in
          if lse < hp -. 1e-6 then Alcotest.failf "LSE %.4f < HPWL %.4f" lse hp;
          (* per net per axis the gap is at most 2 gamma log(max degree) *)
          let max_deg = Pins.max_net_degree pins in
          let nn = float_of_int (Design.num_nets d) in
          let bound = hp +. (2.0 *. nn *. Lse.upper_bound_gap ~gamma ~degree:max_deg *. 2.0) in
          if lse > bound then Alcotest.failf "LSE %.4f above bound %.4f" lse bound)
        [ 10.0; 1.0; 0.1 ])
    [ 1; 2; 3 ]

let test_lse_converges_to_hpwl () =
  let d = bounds_design 4 in
  let pins = Pins.build d in
  let cx, cy = Pins.centers_of_design d in
  let hp = Hpwl.total pins ~cx ~cy in
  let err gamma = abs_float (Lse.value pins ~gamma ~cx ~cy -. hp) in
  Alcotest.(check bool) "monotone in gamma" true (err 0.01 < err 1.0 && err 1.0 < err 100.0)

let test_wa_lower_bound () =
  List.iter
    (fun seed ->
      let d = bounds_design seed in
      let pins = Pins.build d in
      let cx, cy = Pins.centers_of_design d in
      List.iter
        (fun gamma ->
          let wa = Wa.value pins ~gamma ~cx ~cy in
          let hp = Hpwl.total pins ~cx ~cy in
          if wa > hp +. 1e-6 then Alcotest.failf "WA %.4f > HPWL %.4f" wa hp)
        [ 10.0; 1.0; 0.1 ])
    [ 5; 6; 7 ]

let test_wa_converges_to_hpwl () =
  let d = bounds_design 8 in
  let pins = Pins.build d in
  let cx, cy = Pins.centers_of_design d in
  let hp = Hpwl.total pins ~cx ~cy in
  Alcotest.(check bool) "tight at small gamma" true
    (abs_float (Wa.value pins ~gamma:0.01 ~cx ~cy -. hp) < 0.05 *. hp)

let test_wa_tighter_than_lse () =
  (* the WA model's selling point: smaller modelling error than LSE at the
     same gamma *)
  let worse = ref 0 and total = ref 0 in
  List.iter
    (fun seed ->
      let d = bounds_design seed in
      let pins = Pins.build d in
      let cx, cy = Pins.centers_of_design d in
      let hp = Hpwl.total pins ~cx ~cy in
      let gamma = 2.0 in
      let e_lse = abs_float (Lse.value pins ~gamma ~cx ~cy -. hp) in
      let e_wa = abs_float (Wa.value pins ~gamma ~cx ~cy -. hp) in
      incr total;
      if e_wa > e_lse then incr worse)
    [ 11; 12; 13; 14; 15; 16 ];
  Alcotest.(check bool) "WA usually tighter" true (!worse * 2 <= !total)

(* ---------------- gradients ---------------- *)

let test_lse_gradient () =
  List.iter
    (fun seed ->
      let d = bounds_design seed in
      let pins = Pins.build d in
      let err =
        Tutil.gradient_error d ~value_grad:(fun ~cx ~cy ~gx ~gy ->
            Lse.value_grad pins ~gamma:3.0 ~cx ~cy ~gx ~gy)
      in
      if err > 1e-4 then Alcotest.failf "LSE gradient error %.2e" err)
    [ 21; 22; 23 ]

let test_wa_gradient () =
  List.iter
    (fun seed ->
      let d = bounds_design seed in
      let pins = Pins.build d in
      let err =
        Tutil.gradient_error d ~value_grad:(fun ~cx ~cy ~gx ~gy ->
            Wa.value_grad pins ~gamma:3.0 ~cx ~cy ~gx ~gy)
      in
      if err > 1e-4 then Alcotest.failf "WA gradient error %.2e" err)
    [ 24; 25; 26 ]

let test_gradient_translation_invariance () =
  (* moving everything by a constant leaves both models unchanged *)
  let d = bounds_design 31 in
  let pins = Pins.build d in
  let cx, cy = Pins.centers_of_design d in
  let v1 = Lse.value pins ~gamma:2.0 ~cx ~cy in
  let cx' = Array.map (fun x -> x +. 13.0) cx in
  let cy' = Array.map (fun y -> y -. 7.0) cy in
  let v2 = Lse.value pins ~gamma:2.0 ~cx:cx' ~cy:cy' in
  Alcotest.(check (float 1e-6)) "translation invariant" v1 v2

let test_model_dispatch () =
  let d = bounds_design 41 in
  let pins = Pins.build d in
  let cx, cy = Pins.centers_of_design d in
  check_float "lse dispatch" (Lse.value pins ~gamma:1.0 ~cx ~cy)
    (Model.value Model.Lse pins ~gamma:1.0 ~cx ~cy);
  check_float "wa dispatch" (Wa.value pins ~gamma:1.0 ~cx ~cy)
    (Model.value Model.Wa pins ~gamma:1.0 ~cx ~cy);
  Alcotest.(check bool) "kind strings" true
    (Model.kind_of_string "lse" = Some Model.Lse
    && Model.kind_of_string "wa" = Some Model.Wa
    && Model.kind_of_string "x" = None)

let test_numerical_stability_large_coords () =
  (* the max-shift normalisation must survive coordinates ~1e6 *)
  let d = two_point_design () in
  let pins = Pins.build d in
  let cx, cy = Pins.centers_of_design d in
  let cx = Array.map (fun x -> x +. 1e6) cx in
  let lse = Lse.value pins ~gamma:0.5 ~cx ~cy in
  let wa = Wa.value pins ~gamma:0.5 ~cx ~cy in
  Alcotest.(check bool) "lse finite" true (Float.is_finite lse);
  Alcotest.(check bool) "wa finite" true (Float.is_finite wa)

let suite =
  [
    Alcotest.test_case "hpwl two points" `Quick test_hpwl_two_points;
    Alcotest.test_case "hpwl weighted" `Quick test_hpwl_weighted;
    Alcotest.test_case "hpwl degenerate" `Quick test_hpwl_degenerate;
    Alcotest.test_case "lse upper bound" `Quick test_lse_upper_bound;
    Alcotest.test_case "lse gamma convergence" `Quick test_lse_converges_to_hpwl;
    Alcotest.test_case "wa lower bound" `Quick test_wa_lower_bound;
    Alcotest.test_case "wa gamma convergence" `Quick test_wa_converges_to_hpwl;
    Alcotest.test_case "wa tighter than lse" `Quick test_wa_tighter_than_lse;
    Alcotest.test_case "lse gradient fd" `Quick test_lse_gradient;
    Alcotest.test_case "wa gradient fd" `Quick test_wa_gradient;
    Alcotest.test_case "translation invariance" `Quick test_gradient_translation_invariance;
    Alcotest.test_case "model dispatch" `Quick test_model_dispatch;
    Alcotest.test_case "stability at large coords" `Quick test_numerical_stability_large_coords;
  ]
