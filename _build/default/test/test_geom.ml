(* Tests for Dpp_geom: Point, Interval, Rect, Orient. *)

module Point = Dpp_geom.Point
module Interval = Dpp_geom.Interval
module Rect = Dpp_geom.Rect
module Orient = Dpp_geom.Orient

let check_float = Alcotest.(check (float 1e-9))

let rect_gen =
  QCheck.Gen.(
    map4
      (fun a b c d -> Rect.make ~xl:a ~yl:b ~xh:(a +. abs_float c) ~yh:(b +. abs_float d))
      (float_range (-100.0) 100.0) (float_range (-100.0) 100.0) (float_range 0.0 50.0)
      (float_range 0.0 50.0))

let arb_rect = QCheck.make ~print:(fun r -> Format.asprintf "%a" Rect.pp r) rect_gen

(* ---------------- Point ---------------- *)

let test_point_ops () =
  let a = Point.make 1.0 2.0 and b = Point.make 4.0 6.0 in
  check_float "dist" 5.0 (Point.dist a b);
  check_float "manhattan" 7.0 (Point.manhattan a b);
  Alcotest.(check bool) "midpoint" true (Point.equal (Point.midpoint a b) (Point.make 2.5 4.0));
  check_float "dot" 16.0 (Point.dot a b);
  Alcotest.(check bool) "add/sub inverse" true
    (Point.equal a (Point.sub (Point.add a b) b));
  Alcotest.(check int) "compare lex" (-1) (compare (Point.compare a b) 0)

let test_point_scale () =
  let p = Point.scale 2.0 (Point.make 1.5 (-3.0)) in
  Alcotest.(check bool) "scaled" true (Point.equal p (Point.make 3.0 (-6.0)))

(* ---------------- Interval ---------------- *)

let test_interval_basic () =
  let i = Interval.make 5.0 1.0 in
  check_float "normalised lo" 1.0 i.Interval.lo;
  check_float "length" 4.0 (Interval.length i);
  Alcotest.(check bool) "contains" true (Interval.contains i 3.0);
  Alcotest.(check bool) "not contains" false (Interval.contains i 7.0);
  check_float "clamp below" 1.0 (Interval.clamp i 0.0);
  check_float "clamp above" 5.0 (Interval.clamp i 9.0);
  check_float "clamp inside" 2.0 (Interval.clamp i 2.0)

let test_interval_overlap () =
  let a = Interval.make 0.0 2.0 and b = Interval.make 1.0 3.0 and c = Interval.make 2.0 4.0 in
  Alcotest.(check bool) "overlap" true (Interval.overlaps a b);
  Alcotest.(check bool) "touching does not overlap" false (Interval.overlaps a c);
  check_float "overlap length" 1.0 (Interval.overlap_length a b);
  check_float "disjoint overlap" 0.0 (Interval.overlap_length a (Interval.make 5.0 6.0));
  (match Interval.intersection a b with
  | Some i ->
    check_float "inter lo" 1.0 i.Interval.lo;
    check_float "inter hi" 2.0 i.Interval.hi
  | None -> Alcotest.fail "expected intersection");
  let h = Interval.hull a c in
  check_float "hull" 4.0 (Interval.length h)

(* ---------------- Rect ---------------- *)

let test_rect_basic () =
  let r = Rect.make ~xl:1.0 ~yl:2.0 ~xh:5.0 ~yh:4.0 in
  check_float "width" 4.0 (Rect.width r);
  check_float "height" 2.0 (Rect.height r);
  check_float "area" 8.0 (Rect.area r);
  check_float "cx" 3.0 (Rect.center_x r);
  Alcotest.(check bool) "contains center" true (Rect.contains_point r (Rect.center r))

let test_rect_normalise () =
  let r = Rect.make ~xl:5.0 ~yl:4.0 ~xh:1.0 ~yh:2.0 in
  check_float "normalised xl" 1.0 r.Rect.xl;
  check_float "normalised yl" 2.0 r.Rect.yl

let test_rect_overlap_known () =
  let a = Rect.make ~xl:0.0 ~yl:0.0 ~xh:4.0 ~yh:4.0 in
  let b = Rect.make ~xl:2.0 ~yl:2.0 ~xh:6.0 ~yh:6.0 in
  check_float "overlap area" 4.0 (Rect.overlap_area a b);
  let c = Rect.make ~xl:4.0 ~yl:0.0 ~xh:8.0 ~yh:4.0 in
  Alcotest.(check bool) "touching no overlap" false (Rect.overlaps a c);
  check_float "touching area 0" 0.0 (Rect.overlap_area a c)

let test_rect_of_center () =
  let r = Rect.of_center ~cx:5.0 ~cy:5.0 ~w:2.0 ~h:4.0 in
  check_float "xl" 4.0 r.Rect.xl;
  check_float "yh" 7.0 r.Rect.yh

let test_rect_clamp_inside () =
  let outer = Rect.make ~xl:0.0 ~yl:0.0 ~xh:10.0 ~yh:10.0 in
  let r = Rect.make ~xl:8.0 ~yl:(-3.0) ~xh:12.0 ~yh:1.0 in
  let c = Rect.clamp_inside ~outer r in
  Alcotest.(check bool) "inside after clamp" true (Rect.contains_rect outer c);
  check_float "width preserved" (Rect.width r) (Rect.width c)

let prop_overlap_symmetric =
  QCheck.Test.make ~name:"rect overlap_area symmetric" ~count:200
    QCheck.(pair arb_rect arb_rect)
    (fun (a, b) -> abs_float (Rect.overlap_area a b -. Rect.overlap_area b a) < 1e-9)

let prop_intersection_contained =
  QCheck.Test.make ~name:"rect intersection contained in both" ~count:200
    QCheck.(pair arb_rect arb_rect)
    (fun (a, b) ->
      match Rect.intersection a b with
      | None -> true
      | Some i -> Rect.contains_rect a i && Rect.contains_rect b i)

let prop_hull_contains =
  QCheck.Test.make ~name:"rect hull contains both" ~count:200
    QCheck.(pair arb_rect arb_rect)
    (fun (a, b) ->
      let h = Rect.hull a b in
      Rect.contains_rect h a && Rect.contains_rect h b)

let prop_overlap_bounded =
  QCheck.Test.make ~name:"overlap area <= min area" ~count:200
    QCheck.(pair arb_rect arb_rect)
    (fun (a, b) -> Rect.overlap_area a b <= min (Rect.area a) (Rect.area b) +. 1e-9)

(* ---------------- Orient ---------------- *)

let test_orient_strings () =
  List.iter
    (fun o ->
      match Orient.of_string (Orient.to_string o) with
      | Some o' -> Alcotest.(check bool) "roundtrip" true (Orient.equal o o')
      | None -> Alcotest.fail "roundtrip failed")
    Orient.all;
  Alcotest.(check bool) "bad string" true (Orient.of_string "Q" = None)

let test_orient_involutions () =
  List.iter
    (fun o ->
      Alcotest.(check bool) "flip_x involution" true (Orient.equal o (Orient.flip_x (Orient.flip_x o)));
      Alcotest.(check bool) "flip_y involution" true (Orient.equal o (Orient.flip_y (Orient.flip_y o))))
    Orient.all

let test_orient_rotation_order () =
  List.iter
    (fun o ->
      let r4 = Orient.rotate90 (Orient.rotate90 (Orient.rotate90 (Orient.rotate90 o))) in
      Alcotest.(check bool) "rotate^4 = id" true (Orient.equal o r4))
    Orient.all

let test_orient_dims () =
  let w, h = Orient.apply Orient.N ~w:3.0 ~h:10.0 in
  check_float "N width" 3.0 w;
  check_float "N height" 10.0 h;
  let w, h = Orient.apply Orient.E ~w:3.0 ~h:10.0 in
  check_float "E width" 10.0 w;
  check_float "E height" 3.0 h

let prop_offset_in_box =
  let arb =
    QCheck.make
      QCheck.Gen.(
        let* o = oneofl Orient.all in
        let* w = float_range 1.0 20.0 in
        let* h = float_range 1.0 20.0 in
        let* fx = float_range 0.0 1.0 in
        let* fy = float_range 0.0 1.0 in
        return (o, w, h, fx *. w, fy *. h))
  in
  QCheck.Test.make ~name:"oriented pin offset stays inside the oriented box" ~count:500 arb
    (fun (o, w, h, dx, dy) ->
      let ow, oh = Orient.apply o ~w ~h in
      let dx', dy' = Orient.apply_offset o ~w ~h (dx, dy) in
      dx' >= -1e-9 && dx' <= ow +. 1e-9 && dy' >= -1e-9 && dy' <= oh +. 1e-9)

let test_orient_offset_known () =
  (* a pin at the left edge moves to the right edge under FN *)
  let dx, dy = Orient.apply_offset Orient.FN ~w:4.0 ~h:10.0 (1.0, 2.0) in
  check_float "FN dx" 3.0 dx;
  check_float "FN dy" 2.0 dy;
  let dx, dy = Orient.apply_offset Orient.S ~w:4.0 ~h:10.0 (1.0, 2.0) in
  check_float "S dx" 3.0 dx;
  check_float "S dy" 8.0 dy

let suite =
  [
    Alcotest.test_case "point ops" `Quick test_point_ops;
    Alcotest.test_case "point scale" `Quick test_point_scale;
    Alcotest.test_case "interval basic" `Quick test_interval_basic;
    Alcotest.test_case "interval overlap" `Quick test_interval_overlap;
    Alcotest.test_case "rect basic" `Quick test_rect_basic;
    Alcotest.test_case "rect normalise" `Quick test_rect_normalise;
    Alcotest.test_case "rect overlap known" `Quick test_rect_overlap_known;
    Alcotest.test_case "rect of_center" `Quick test_rect_of_center;
    Alcotest.test_case "rect clamp_inside" `Quick test_rect_clamp_inside;
    QCheck_alcotest.to_alcotest prop_overlap_symmetric;
    QCheck_alcotest.to_alcotest prop_intersection_contained;
    QCheck_alcotest.to_alcotest prop_hull_contains;
    QCheck_alcotest.to_alcotest prop_overlap_bounded;
    Alcotest.test_case "orient strings" `Quick test_orient_strings;
    Alcotest.test_case "orient involutions" `Quick test_orient_involutions;
    Alcotest.test_case "orient rotations" `Quick test_orient_rotation_order;
    Alcotest.test_case "orient dims" `Quick test_orient_dims;
    QCheck_alcotest.to_alcotest prop_offset_in_box;
    Alcotest.test_case "orient offset known" `Quick test_orient_offset_known;
  ]
