(* Tests for Dpp_gen: cell library, datapath blocks, random logic,
   composition and presets. *)

module Rect = Dpp_geom.Rect
module Types = Dpp_netlist.Types
module Builder = Dpp_netlist.Builder
module Design = Dpp_netlist.Design
module Groups = Dpp_netlist.Groups
module Validate = Dpp_netlist.Validate
module Stdcells = Dpp_gen.Stdcells
module Kit = Dpp_gen.Kit
module Blocks = Dpp_gen.Blocks
module Randlogic = Dpp_gen.Randlogic
module Compose = Dpp_gen.Compose
module Presets = Dpp_gen.Presets
module Nstats = Dpp_netlist.Nstats

(* ---------------- Stdcells ---------------- *)

let test_stdcells_lookup () =
  Alcotest.(check bool) "find INV" true (Stdcells.find "INV" = Some Stdcells.inv);
  Alcotest.(check bool) "find missing" true (Stdcells.find "NAND9" = None);
  Alcotest.(check int) "library size" 15 (List.length Stdcells.all)

let test_stdcells_pins () =
  let m = Stdcells.fa in
  Alcotest.(check int) "fa pins" 5 (m.Stdcells.m_inputs + m.Stdcells.m_outputs);
  for k = 0 to 4 do
    let dx, dy = Stdcells.pin_offset m ~index:k in
    Alcotest.(check bool) "pin inside" true
      (dx > 0.0 && dx < m.Stdcells.m_width && dy > 0.0 && dy < Stdcells.row_height)
  done;
  Alcotest.(check bool) "bad index" true
    (try
       ignore (Stdcells.pin_offset m ~index:5);
       false
     with Invalid_argument _ -> true)

(* ---------------- block helper ---------------- *)

let with_kit f =
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:1000.0 ~yh:1000.0 in
  let b = Builder.create ~die ~row_height:Stdcells.row_height ~site_width:Stdcells.site_width () in
  let kit = Kit.create b ~prefix:"t" in
  let blk = f kit in
  (* terminate all ports so the design validates *)
  let finish_ports () =
    List.iter
      (fun (_, sinks) ->
        let pad = Builder.add_cell b ~name:(Kit.fresh_name kit "ipad") ~master:"PAD" ~w:1.0 ~h:1.0 ~kind:Types.Pad in
        let pin = Builder.add_pin b ~cell:pad ~dir:Types.Output () in
        ignore (Builder.add_net b (pin :: sinks)))
      blk.Blocks.in_ports;
    List.iter
      (fun (_, driver) ->
        let pad = Builder.add_cell b ~name:(Kit.fresh_name kit "opad") ~master:"PAD" ~w:1.0 ~h:1.0 ~kind:Types.Pad in
        let pin = Builder.add_pin b ~cell:pad ~dir:Types.Input () in
        ignore (Builder.add_net b [ driver; pin ]))
      blk.Blocks.out_ports
  in
  finish_ports ();
  (match blk.Blocks.group with Some g -> Builder.add_group b g | None -> ());
  blk, Builder.finish b

let the_group blk =
  match blk.Blocks.group with
  | Some g -> g
  | None -> Alcotest.fail "expected a ground-truth group"

let check_block_clean name blk d =
  let issues = Validate.check d in
  if not (Validate.is_clean issues) then
    Alcotest.failf "%s: validation errors" name;
  (* every group cell must exist and be movable *)
  Array.iter
    (fun c ->
      if Types.is_fixed_kind (Design.cell d c).Types.c_kind then
        Alcotest.failf "%s: fixed cell in group" name)
    (Groups.cell_ids (the_group blk))

let test_ripple_adder () =
  let blk, d = with_kit (fun kit -> Blocks.ripple_adder kit ~name:"add" ~bits:8) in
  check_block_clean "adder" blk d;
  Alcotest.(check int) "slices" 8 (Groups.num_slices (the_group blk));
  Alcotest.(check int) "stages" 5 (Groups.num_stages (the_group blk));
  Alcotest.(check int) "cells" 40 (Groups.cell_count (the_group blk));
  (* ports: cin + 2 per bit in, s per bit + cout out *)
  Alcotest.(check int) "in ports" 17 (List.length blk.Blocks.in_ports);
  Alcotest.(check int) "out ports" 9 (List.length blk.Blocks.out_ports)

let test_alu () =
  let blk, d = with_kit (fun kit -> Blocks.alu kit ~name:"alu" ~bits:4) in
  check_block_clean "alu" blk d;
  Alcotest.(check int) "stages" 11 (Groups.num_stages (the_group blk));
  Alcotest.(check int) "cells" 44 (Groups.cell_count (the_group blk));
  Alcotest.(check bool) "has op selects" true
    (List.mem_assoc "sel0" blk.Blocks.in_ports && List.mem_assoc "sel1" blk.Blocks.in_ports);
  (* sel0 touches two muxes per bit *)
  Alcotest.(check int) "sel0 fanout" 8 (List.length (List.assoc "sel0" blk.Blocks.in_ports))

let test_barrel_shifter () =
  let blk, d = with_kit (fun kit -> Blocks.barrel_shifter kit ~name:"sh" ~bits:8) in
  check_block_clean "shifter" blk d;
  Alcotest.(check int) "stages = log2 bits" 3 (Groups.num_stages (the_group blk));
  Alcotest.(check int) "cells" 24 (Groups.cell_count (the_group blk));
  Alcotest.(check int) "level selects" 3
    (List.length (List.filter (fun (n, _) -> String.length n >= 2 && String.sub n 0 2 = "sh") blk.Blocks.in_ports))

let test_register_bank () =
  let blk, d = with_kit (fun kit -> Blocks.register_bank kit ~name:"rb" ~bits:6) in
  check_block_clean "regbank" blk d;
  Alcotest.(check int) "stages" 3 (Groups.num_stages (the_group blk));
  Alcotest.(check int) "clk fanout" 6 (List.length (List.assoc "clk" blk.Blocks.in_ports))

let test_comparator () =
  let blk, d = with_kit (fun kit -> Blocks.comparator kit ~name:"cmp" ~bits:5) in
  check_block_clean "comparator" blk d;
  Alcotest.(check int) "cells" 10 (Groups.cell_count (the_group blk));
  Alcotest.(check int) "single output" 1 (List.length blk.Blocks.out_ports)

let test_multiplier () =
  let blk, d = with_kit (fun kit -> Blocks.multiplier kit ~name:"mul" ~bits:4) in
  check_block_clean "multiplier" blk d;
  Alcotest.(check int) "slices" 4 (Groups.num_slices (the_group blk));
  Alcotest.(check int) "stages" 8 (Groups.num_stages (the_group blk));
  (* row 0 has no adders: 4 holes *)
  Alcotest.(check int) "cells" 28 (Groups.cell_count (the_group blk))

let test_mux_tree () =
  let blk, d = with_kit (fun kit -> Blocks.mux_tree kit ~name:"mx" ~bits:4 ~inputs:4) in
  check_block_clean "muxtree" blk d;
  Alcotest.(check int) "stages = inputs-1" 3 (Groups.num_stages (the_group blk));
  Alcotest.(check bool) "bad inputs rejected" true
    (try
       let _ = with_kit (fun kit -> Blocks.mux_tree kit ~name:"mx2" ~bits:2 ~inputs:3) in
       false
     with Invalid_argument _ -> true)

let test_block_bad_bits () =
  Alcotest.(check bool) "adder bits 0 rejected" true
    (try
       let _ = with_kit (fun kit -> Blocks.ripple_adder kit ~name:"a" ~bits:0) in
       false
     with Invalid_argument _ -> true)

(* ---------------- Randlogic ---------------- *)

let test_randlogic_counts () =
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:1000.0 ~yh:1000.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let kit = Kit.create b ~prefix:"g" in
  let rng = Dpp_util.Rng.create 17 in
  let cloud = Randlogic.cloud kit ~rng ~cells:200 in
  Alcotest.(check int) "cell count" 200 (List.length cloud.Randlogic.rl_cells);
  Alcotest.(check bool) "has out ports" true (cloud.Randlogic.rl_out_ports <> []);
  Alcotest.(check bool) "has in ports" true (cloud.Randlogic.rl_in_ports <> [])

let test_randlogic_deterministic () =
  let mk seed =
    let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:1000.0 ~yh:1000.0 in
    let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
    let kit = Kit.create b ~prefix:"g" in
    let cloud = Randlogic.cloud kit ~rng:(Dpp_util.Rng.create seed) ~cells:100 in
    Builder.num_nets b, List.length cloud.Randlogic.rl_out_ports
  in
  Alcotest.(check bool) "same seed same structure" true (mk 3 = mk 3);
  Alcotest.(check bool) "different seed differs" true (mk 3 <> mk 4)

(* ---------------- Compose / Presets ---------------- *)

let test_compose_validates () =
  let spec =
    {
      Compose.sp_name = "t";
      sp_seed = 5;
      sp_blocks = [ Compose.Adder 8; Regbank 8; Comparator 8 ];
      sp_random_cells = 150;
      sp_utilization = 0.7;
    }
  in
  let d = Compose.build spec in
  Alcotest.(check bool) "validates" true (Validate.is_clean (Validate.check d));
  Alcotest.(check int) "three groups" 3 (List.length d.Design.groups);
  let st = Nstats.compute d in
  Alcotest.(check bool) "utilization near target" true
    (abs_float (st.Nstats.s_utilization -. 0.7) < 0.02)

let test_compose_deterministic () =
  let spec = List.hd Presets.suite in
  let d1 = Compose.build spec and d2 = Compose.build spec in
  Alcotest.(check int) "same cells" (Design.num_cells d1) (Design.num_cells d2);
  Alcotest.(check int) "same nets" (Design.num_nets d1) (Design.num_nets d2);
  (* spot-check full structural equality of a net *)
  let n1 = Design.net d1 7 and n2 = Design.net d2 7 in
  Alcotest.(check bool) "same net pins" true (n1.Types.n_pins = n2.Types.n_pins)

let test_compose_rejects_empty () =
  Alcotest.(check bool) "empty spec rejected" true
    (try
       ignore
         (Compose.build
            {
              Compose.sp_name = "e";
              sp_seed = 1;
              sp_blocks = [];
              sp_random_cells = 0;
              sp_utilization = 0.7;
            });
       false
     with Invalid_argument _ -> true)

let test_compose_bad_utilization () =
  Alcotest.(check bool) "utilization > 1 rejected" true
    (try
       ignore
         (Compose.build
            {
              Compose.sp_name = "e";
              sp_seed = 1;
              sp_blocks = [ Compose.Adder 4 ];
              sp_random_cells = 10;
              sp_utilization = 1.5;
            });
       false
     with Invalid_argument _ -> true)

let test_presets_all_valid () =
  List.iter
    (fun spec ->
      let d = Compose.build spec in
      let issues = Validate.check d in
      if not (Validate.is_clean issues) then
        Alcotest.failf "preset %s has validation errors" spec.Compose.sp_name)
    Presets.suite

let test_presets_lookup () =
  Alcotest.(check int) "suite size" 7 (List.length Presets.suite);
  Alcotest.(check bool) "by_name hit" true (Presets.by_name "dp_add32" <> None);
  Alcotest.(check bool) "by_name miss" true (Presets.by_name "nope" = None)

let test_presets_scaled () =
  let spec = Presets.scaled ~name:"s" ~seed:1 ~cells:1500 ~dp_fraction:0.5 in
  let d = Compose.build spec in
  let st = Nstats.compute d in
  Alcotest.(check bool) "size in ballpark" true
    (st.Nstats.s_movable > 1000 && st.Nstats.s_movable < 2200);
  Alcotest.(check bool) "dp fraction in ballpark" true
    (abs_float (st.Nstats.s_datapath_fraction -. 0.5) < 0.2);
  Alcotest.(check bool) "bad fraction rejected" true
    (try
       ignore (Presets.scaled ~name:"s" ~seed:1 ~cells:1500 ~dp_fraction:0.99);
       false
     with Invalid_argument _ -> true)

let test_pads_on_boundary () =
  let d = Compose.build (List.hd Presets.suite) in
  let die = d.Design.die in
  Array.iter
    (fun i ->
      match (Design.cell d i).Types.c_kind with
      | Types.Pad ->
        let x = d.Design.x.(i) and y = d.Design.y.(i) in
        let on_edge =
          x <= die.Rect.xl +. 1.5 || x >= die.Rect.xh -. 2.5 || y <= die.Rect.yl +. 1.5
          || y >= die.Rect.yh -. 2.5
        in
        if not on_edge then Alcotest.failf "pad %d not on boundary (%.1f, %.1f)" i x y
      | Types.Fixed | Types.Movable -> ())
    (Design.fixed_ids d)

let suite =
  [
    Alcotest.test_case "stdcells lookup" `Quick test_stdcells_lookup;
    Alcotest.test_case "stdcells pins" `Quick test_stdcells_pins;
    Alcotest.test_case "ripple adder" `Quick test_ripple_adder;
    Alcotest.test_case "alu" `Quick test_alu;
    Alcotest.test_case "barrel shifter" `Quick test_barrel_shifter;
    Alcotest.test_case "register bank" `Quick test_register_bank;
    Alcotest.test_case "comparator" `Quick test_comparator;
    Alcotest.test_case "multiplier" `Quick test_multiplier;
    Alcotest.test_case "mux tree" `Quick test_mux_tree;
    Alcotest.test_case "bad bits" `Quick test_block_bad_bits;
    Alcotest.test_case "randlogic counts" `Quick test_randlogic_counts;
    Alcotest.test_case "randlogic deterministic" `Quick test_randlogic_deterministic;
    Alcotest.test_case "compose validates" `Quick test_compose_validates;
    Alcotest.test_case "compose deterministic" `Quick test_compose_deterministic;
    Alcotest.test_case "compose rejects empty" `Quick test_compose_rejects_empty;
    Alcotest.test_case "compose bad utilization" `Quick test_compose_bad_utilization;
    Alcotest.test_case "presets all valid" `Slow test_presets_all_valid;
    Alcotest.test_case "presets lookup" `Quick test_presets_lookup;
    Alcotest.test_case "presets scaled" `Quick test_presets_scaled;
    Alcotest.test_case "pads on boundary" `Quick test_pads_on_boundary;
  ]

(* appended: tests for the later-added blocks *)

let test_carry_select_adder () =
  let blk, d = with_kit (fun kit -> Blocks.carry_select_adder kit ~name:"csa" ~bits:8 ~block_size:4) in
  check_block_clean "cselect" blk d;
  Alcotest.(check int) "slices" 8 (Groups.num_slices (the_group blk));
  (* 11 cells per bit + a carry mux on each block-boundary slice *)
  Alcotest.(check int) "cells" (8 * 11 + 2) (Groups.cell_count (the_group blk));
  Alcotest.(check bool) "bad block size rejected" true
    (try
       let _ = with_kit (fun kit -> Blocks.carry_select_adder kit ~name:"x" ~bits:6 ~block_size:4) in
       false
     with Invalid_argument _ -> true)

let test_priority_encoder () =
  let blk, d = with_kit (fun kit -> Blocks.priority_encoder kit ~name:"pri" ~bits:8) in
  check_block_clean "prienc" blk d;
  Alcotest.(check int) "slices" 8 (Groups.num_slices (the_group blk));
  Alcotest.(check int) "stages" 3 (Groups.num_stages (the_group blk));
  (* grants per bit + the any output *)
  Alcotest.(check int) "outputs" 9 (List.length blk.Blocks.out_ports)

let test_compose_new_blocks () =
  let d =
    Compose.build
      {
        Compose.sp_name = "newb";
        sp_seed = 19;
        sp_blocks = [ Compose.Cselect (16, 4); Prienc 8; Regbank 16 ];
        sp_random_cells = 150;
        sp_utilization = 0.7;
      }
  in
  Alcotest.(check bool) "validates" true (Validate.is_clean (Validate.check d));
  Alcotest.(check int) "three groups" 3 (List.length d.Design.groups)

let suite =
  suite
  @ [
      Alcotest.test_case "carry-select adder" `Quick test_carry_select_adder;
      Alcotest.test_case "priority encoder" `Quick test_priority_encoder;
      Alcotest.test_case "compose new blocks" `Quick test_compose_new_blocks;
    ]

(* appended: noise injection tests *)

let test_noise_preserves_counts () =
  let d = Compose.build (List.nth Presets.suite 4) in
  let rng = Dpp_util.Rng.create 7 in
  let d' = Dpp_gen.Noise.rewire ~rng ~fraction:0.2 d in
  Alcotest.(check int) "cells" (Design.num_cells d) (Design.num_cells d');
  Alcotest.(check int) "nets" (Design.num_nets d) (Design.num_nets d');
  Alcotest.(check int) "pins" (Design.num_pins d) (Design.num_pins d');
  (* every net keeps its pin count *)
  for n = 0 to Design.num_nets d - 1 do
    Alcotest.(check int) "net degree preserved"
      (Array.length (Design.net d n).Types.n_pins)
      (Array.length (Design.net d' n).Types.n_pins)
  done;
  (* result still validates (no errors) *)
  Alcotest.(check bool) "validates" true (Validate.is_clean (Validate.check d'))

let test_noise_zero_is_identity () =
  let d = Compose.build (List.nth Presets.suite 4) in
  let rng = Dpp_util.Rng.create 8 in
  let d' = Dpp_gen.Noise.rewire ~rng ~fraction:0.0 d in
  for n = 0 to Design.num_nets d - 1 do
    if (Design.net d n).Types.n_pins <> (Design.net d' n).Types.n_pins then
      Alcotest.failf "net %d changed at zero noise" n
  done

let test_noise_actually_rewires () =
  let d = Compose.build (List.nth Presets.suite 4) in
  let rng = Dpp_util.Rng.create 9 in
  let d' = Dpp_gen.Noise.rewire ~rng ~fraction:0.3 d in
  let changed = ref 0 in
  for n = 0 to Design.num_nets d - 1 do
    if (Design.net d n).Types.n_pins <> (Design.net d' n).Types.n_pins then incr changed
  done;
  Alcotest.(check bool) "a substantial number of nets changed" true
    (!changed > Design.num_nets d / 10)

let test_noise_input_untouched () =
  let d = Compose.build (List.nth Presets.suite 4) in
  let before = Array.map (fun (n : Types.net) -> n.Types.n_pins) d.Design.nets in
  let rng = Dpp_util.Rng.create 10 in
  ignore (Dpp_gen.Noise.rewire ~rng ~fraction:0.5 d);
  Array.iteri
    (fun n pins ->
      if pins <> (Design.net d n).Types.n_pins then Alcotest.failf "input net %d mutated" n)
    before

let test_noise_degrades_recall () =
  let d = Compose.build (List.hd Presets.suite) in
  let extract dd =
    let r = Dpp_extract.Slicer.run dd Dpp_extract.Slicer.default_config in
    (Dpp_extract.Exmetrics.compare_to_truth ~truth:dd.Design.groups
       ~found:r.Dpp_extract.Slicer.groups)
      .Dpp_extract.Exmetrics.recall
  in
  let clean = extract d in
  let noisy =
    extract (Dpp_gen.Noise.rewire ~rng:(Dpp_util.Rng.create 11) ~fraction:0.4 d)
  in
  Alcotest.(check bool) "noise reduces recall" true (noisy < clean)

let suite =
  suite
  @ [
      Alcotest.test_case "noise preserves counts" `Quick test_noise_preserves_counts;
      Alcotest.test_case "noise zero identity" `Quick test_noise_zero_is_identity;
      Alcotest.test_case "noise rewires" `Quick test_noise_actually_rewires;
      Alcotest.test_case "noise input untouched" `Quick test_noise_input_untouched;
      Alcotest.test_case "noise degrades recall" `Quick test_noise_degrades_recall;
    ]
