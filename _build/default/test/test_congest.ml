(* Tests for Dpp_congest.Rudy. *)

module Rect = Dpp_geom.Rect
module Types = Dpp_netlist.Types
module Builder = Dpp_netlist.Builder
module Rudy = Dpp_congest.Rudy
module Pins = Dpp_wirelen.Pins

let check_float = Alcotest.(check (float 1e-6))

(* one 2-pin net between known points on a known grid *)
let net_design x0 x1 =
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:100.0 ~yh:100.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  let mk name x =
    let id = Builder.add_cell b ~name ~master:"X" ~w:2.0 ~h:10.0 ~kind:Types.Movable in
    let p = Builder.add_pin b ~cell:id ~dir:Types.Input ~dx:1.0 ~dy:5.0 () in
    Builder.set_position b id ~x ~y:40.0;
    p
  in
  let p0 = mk "a" x0 and p1 = mk "b" x1 in
  ignore (Builder.add_net b [ p0; p1 ]);
  Builder.finish b

let test_rudy_mass () =
  (* total demand integrated over the die must equal the net's RUDY volume:
     density (w+h)/(w*h) times box area w*h = w + h (the half-perimeter) *)
  let d = net_design 10.0 60.0 in
  let cx, cy = Pins.centers_of_design d in
  let r = Rudy.compute ~nx:10 ~ny:10 d ~cx ~cy in
  let total =
    Array.fold_left ( +. ) 0.0 r.Rudy.demand *. r.Rudy.bin_w *. r.Rudy.bin_h
  in
  (* pins at x 11 and 61, same y: w = 50, h = max 1 -> volume 51 *)
  check_float "demand volume = half-perimeter" 51.0 total

let test_rudy_localized () =
  let d = net_design 10.0 20.0 in
  let cx, cy = Pins.centers_of_design d in
  let r = Rudy.compute ~nx:10 ~ny:10 d ~cx ~cy in
  (* all demand inside the net's bbox rows: y in [44,46] -> bin row 4 *)
  for iy = 0 to 9 do
    for ix = 0 to 9 do
      let v = r.Rudy.demand.((iy * 10) + ix) in
      if iy <> 4 && v > 1e-9 then Alcotest.failf "demand leaked to bin (%d,%d)" ix iy
    done
  done

let test_rudy_stats () =
  let d = net_design 10.0 60.0 in
  let cx, cy = Pins.centers_of_design d in
  let r = Rudy.compute ~nx:10 ~ny:10 d ~cx ~cy in
  let s = Rudy.stats r in
  Alcotest.(check bool) "max >= p95 >= avg" true
    (s.Rudy.max_ratio >= s.Rudy.p95_ratio && s.Rudy.p95_ratio >= s.Rudy.avg_ratio);
  Alcotest.(check bool) "fractions sane" true
    (s.Rudy.overflowed_bins >= 0.0 && s.Rudy.overflowed_bins <= 1.0)

let test_rudy_hotspots () =
  let d = net_design 10.0 15.0 in
  let cx, cy = Pins.centers_of_design d in
  let r = Rudy.compute ~nx:10 ~ny:10 d ~cx ~cy in
  match Rudy.hotspots r ~count:3 with
  | (ix, iy, ratio) :: _ ->
    Alcotest.(check bool) "hottest is where the net is" true (iy = 4 && ix <= 2);
    Alcotest.(check bool) "ratio positive" true (ratio > 0.0);
    check_float "accessor agrees" ratio (Rudy.ratio_at r ~ix ~iy)
  | [] -> Alcotest.fail "no hotspots"

let test_rudy_placement_sensitivity () =
  (* total RUDY demand volume equals the sum of net half-perimeters, so a
     shorter-wirelength placement must have lower average demand *)
  let d = Dpp_gen.Compose.build (List.nth Dpp_gen.Presets.suite 4) in
  let qp = Dpp_place.Qp.run ~seed:1 d in
  let gp = Dpp_place.Gp.run d Dpp_place.Gp.default_config ~cx:qp.Dpp_place.Qp.cx ~cy:qp.Dpp_place.Qp.cy in
  let pins = Pins.build d in
  let hp_qp = Dpp_wirelen.Hpwl.total pins ~cx:qp.Dpp_place.Qp.cx ~cy:qp.Dpp_place.Qp.cy in
  let hp_gp = Dpp_wirelen.Hpwl.total pins ~cx:gp.Dpp_place.Gp.cx ~cy:gp.Dpp_place.Gp.cy in
  let s_qp = Rudy.stats (Rudy.compute ~nx:16 ~ny:16 d ~cx:qp.Dpp_place.Qp.cx ~cy:qp.Dpp_place.Qp.cy) in
  let s_gp = Rudy.stats (Rudy.compute ~nx:16 ~ny:16 d ~cx:gp.Dpp_place.Gp.cx ~cy:gp.Dpp_place.Gp.cy) in
  let ordered = (hp_qp <= hp_gp) = (s_qp.Rudy.avg_ratio <= s_gp.Rudy.avg_ratio +. 1e-6) in
  Alcotest.(check bool) "average demand tracks wirelength" true ordered

let test_rudy_weight_scales () =
  let d1 = net_design 10.0 60.0 in
  let cx, cy = Pins.centers_of_design d1 in
  let r1 = Rudy.compute ~nx:10 ~ny:10 d1 ~cx ~cy in
  (* double the net weight: total demand doubles *)
  let nets =
    Array.map (fun (n : Types.net) -> { n with Types.n_weight = 2.0 }) d1.Dpp_netlist.Design.nets
  in
  let d2 = { d1 with Dpp_netlist.Design.nets } in
  let r2 = Rudy.compute ~nx:10 ~ny:10 d2 ~cx ~cy in
  let tot r = Array.fold_left ( +. ) 0.0 r.Rudy.demand in
  check_float "weight scales demand" (2.0 *. tot r1) (tot r2)

let suite =
  [
    Alcotest.test_case "rudy mass conservation" `Quick test_rudy_mass;
    Alcotest.test_case "rudy localized" `Quick test_rudy_localized;
    Alcotest.test_case "rudy stats" `Quick test_rudy_stats;
    Alcotest.test_case "rudy hotspots" `Quick test_rudy_hotspots;
    Alcotest.test_case "rudy placement sensitivity" `Slow test_rudy_placement_sensitivity;
    Alcotest.test_case "rudy weight scaling" `Quick test_rudy_weight_scales;
  ]
