(* End-to-end flow tests: both modes, legality, determinism, failure
   handling. *)

module Rect = Dpp_geom.Rect
module Types = Dpp_netlist.Types
module Builder = Dpp_netlist.Builder
module Design = Dpp_netlist.Design
module Pins = Dpp_wirelen.Pins
module Legality = Dpp_place.Legality
module Config = Dpp_core.Config
module Flow = Dpp_core.Flow
module Compose = Dpp_gen.Compose

let flow_design () =
  Compose.build
    {
      Compose.sp_name = "fl";
      sp_seed = 91;
      sp_blocks = [ Compose.Adder 16; Regbank 16; Regbank 16 ];
      sp_random_cells = 300;
      sp_utilization = 0.7;
    }

let small_cfg = { Config.structure_aware with Config.gp_rounds = 10; gp_inner_iters = 30 }

let audit (r : Flow.result) =
  let cx, cy = Pins.centers_of_design r.Flow.design in
  Legality.check r.Flow.design ~cx ~cy

let test_flow_baseline_legal () =
  let d = flow_design () in
  let r = Flow.run d { small_cfg with Config.mode = Config.Baseline } in
  Alcotest.(check (list string)) "no violations" [] (List.map (fun _ -> "v") (audit r));
  Alcotest.(check bool) "final <= legal hpwl" true (r.Flow.hpwl_final <= r.Flow.hpwl_legal +. 1e-6);
  Alcotest.(check bool) "positive metrics" true
    (r.Flow.hpwl_final > 0.0 && r.Flow.steiner_final > 0.0);
  Alcotest.(check bool) "steiner >= hpwl" true (r.Flow.steiner_final >= r.Flow.hpwl_final -. 1e-6);
  Alcotest.(check bool) "no extraction in baseline" true (r.Flow.extraction = None)

let test_flow_structure_aware_legal () =
  let d = flow_design () in
  let r = Flow.run d small_cfg in
  Alcotest.(check (list string)) "no violations" [] (List.map (fun _ -> "v") (audit r));
  Alcotest.(check bool) "extraction ran" true (r.Flow.extraction <> None);
  Alcotest.(check bool) "groups used" true (r.Flow.groups_used <> []);
  (* snapped rigid arrays end perfectly aligned (covered by the structure
     suite); groups left soft on this deliberately short-GP config keep
     residual error, so here the metric only has to be well-formed *)
  Alcotest.(check bool) "alignment error well-formed" true
    (Float.is_finite r.Flow.align_error_final && r.Flow.align_error_final >= 0.0)

let test_flow_input_untouched () =
  let d = flow_design () in
  let x0 = Array.copy d.Design.x in
  ignore (Flow.run d small_cfg);
  Alcotest.(check bool) "input design unchanged" true (d.Design.x = x0)

let test_flow_deterministic () =
  let d = flow_design () in
  let r1 = Flow.run d small_cfg in
  let r2 = Flow.run d small_cfg in
  Alcotest.(check (float 1e-9)) "same hpwl" r1.Flow.hpwl_final r2.Flow.hpwl_final

let test_flow_ground_truth_source () =
  let d = flow_design () in
  let r = Flow.run d { small_cfg with Config.group_source = Config.Ground_truth } in
  Alcotest.(check bool) "no extraction with truth source" true (r.Flow.extraction = None);
  Alcotest.(check bool) "groups from labels" true (r.Flow.groups_used <> [])

let test_flow_soft_mode () =
  let d = flow_design () in
  let r = Flow.run d (Config.with_structure Config.Soft_alignment small_cfg) in
  Alcotest.(check (list string)) "soft mode legal" [] (List.map (fun _ -> "v") (audit r))

let test_flow_invalid_design_raises () =
  (* overfull die must be rejected before placement *)
  let die = Rect.make ~xl:0.0 ~yl:0.0 ~xh:10.0 ~yh:10.0 in
  let b = Builder.create ~die ~row_height:10.0 ~site_width:1.0 () in
  for k = 0 to 9 do
    ignore
      (Builder.add_cell b ~name:(Printf.sprintf "c%d" k) ~master:"X" ~w:2.0 ~h:10.0
         ~kind:Types.Movable)
  done;
  let d = Builder.finish b in
  Alcotest.(check bool) "Invalid_design raised" true
    (try
       ignore (Flow.run d small_cfg);
       false
     with Flow.Invalid_design _ -> true)

let test_flow_times_recorded () =
  let d = flow_design () in
  let r = Flow.run d small_cfg in
  let stage s = List.mem_assoc s r.Flow.times in
  Alcotest.(check bool) "stages timed" true
    (stage "extract" && stage "init" && stage "gp" && stage "legal" && stage "detail");
  Alcotest.(check bool) "total covers stages" true
    (r.Flow.total_time >= List.fold_left (fun acc (_, t) -> acc +. t) 0.0 r.Flow.times -. 1e-6)

let test_flow_run_both_modes_differ () =
  let d = flow_design () in
  let base, sa = Flow.run_both d small_cfg in
  Alcotest.(check bool) "modes recorded" true
    (base.Flow.config.Config.mode = Config.Baseline
    && sa.Flow.config.Config.mode = Config.Structure_aware)

let test_flow_no_groups_ties_baseline () =
  (* a design where extraction finds nothing: both flows must coincide *)
  let d =
    Compose.build
      {
        Compose.sp_name = "tie";
        sp_seed = 92;
        sp_blocks = [ Compose.Adder 4 ];
        sp_random_cells = 400;
        sp_utilization = 0.7;
      }
  in
  let base, sa = Flow.run_both d small_cfg in
  if sa.Flow.groups_used = [] then
    Alcotest.(check (float 1e-6)) "identical when no groups" base.Flow.hpwl_final
      sa.Flow.hpwl_final
  else
    (* extraction found the tiny adder: results may differ but must be sane *)
    Alcotest.(check bool) "sane ratio" true
      (sa.Flow.hpwl_final /. base.Flow.hpwl_final < 1.3)

let suite =
  [
    Alcotest.test_case "baseline legal" `Slow test_flow_baseline_legal;
    Alcotest.test_case "structure-aware legal" `Slow test_flow_structure_aware_legal;
    Alcotest.test_case "input untouched" `Slow test_flow_input_untouched;
    Alcotest.test_case "deterministic" `Slow test_flow_deterministic;
    Alcotest.test_case "ground-truth source" `Slow test_flow_ground_truth_source;
    Alcotest.test_case "soft mode" `Slow test_flow_soft_mode;
    Alcotest.test_case "invalid design" `Quick test_flow_invalid_design_raises;
    Alcotest.test_case "times recorded" `Slow test_flow_times_recorded;
    Alcotest.test_case "run_both" `Slow test_flow_run_both_modes_differ;
    Alcotest.test_case "no-group tie" `Slow test_flow_no_groups_ties_baseline;
  ]
