(* Tests for Dpp_viz: SVG writer and placement plots. *)

module Svg = Dpp_viz.Svg
module Plot = Dpp_viz.Plot
module Pins = Dpp_wirelen.Pins

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_svg_shapes () =
  let s = Svg.create ~width:100.0 ~height:50.0 () in
  Svg.rect s ~x:10.0 ~y:10.0 ~w:20.0 ~h:5.0 ~fill:"#ff0000" ();
  Svg.line s ~x1:0.0 ~y1:0.0 ~x2:100.0 ~y2:50.0 ();
  Svg.text s ~x:5.0 ~y:5.0 "hello <&> \"world\"";
  let out = Svg.to_string s in
  Alcotest.(check bool) "has rect" true (contains ~needle:"<rect" out);
  Alcotest.(check bool) "has line" true (contains ~needle:"<line" out);
  Alcotest.(check bool) "text escaped" true (contains ~needle:"&lt;&amp;&gt;" out);
  Alcotest.(check bool) "valid xml root" true (contains ~needle:"</svg>" out);
  (* y flip: user y=10 with h=5 -> svg y = 50 - 15 = 35 *)
  Alcotest.(check bool) "y flipped" true (contains ~needle:"y=\"35.000\"" out)

let test_svg_colors () =
  Alcotest.(check string) "palette cycles" (Svg.color_of_index 0) (Svg.color_of_index 12);
  Alcotest.(check bool) "heat endpoints" true
    (Svg.heat_color 0.0 = "#0000ff" && Svg.heat_color 1.0 = "#ff0000");
  (* clamping *)
  Alcotest.(check string) "clamps below" (Svg.heat_color 0.0) (Svg.heat_color (-3.0));
  Alcotest.(check string) "clamps above" (Svg.heat_color 1.0) (Svg.heat_color 42.0)

let test_plot_placement_file () =
  let d = Dpp_gen.Compose.build (List.nth Dpp_gen.Presets.suite 4) in
  let path = Filename.temp_file "dpp_plot" ".svg" in
  Plot.placement ~title:"test" d ~path;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  (* every cell is a rect: the file must be substantial *)
  Alcotest.(check bool) "non-trivial svg written" true (len > 50_000)

let test_plot_with_congestion () =
  let d = Dpp_gen.Compose.build (List.nth Dpp_gen.Presets.suite 4) in
  let cx, cy = Pins.centers_of_design d in
  let rudy = Dpp_congest.Rudy.compute d ~cx ~cy in
  let path = Filename.temp_file "dpp_plot" ".svg" in
  Plot.placement ~congestion:rudy d ~path;
  let ok = Sys.file_exists path in
  Sys.remove path;
  Alcotest.(check bool) "written" true ok

let test_plot_compare () =
  let d = Dpp_gen.Compose.build (List.nth Dpp_gen.Presets.suite 4) in
  let path = Filename.temp_file "dpp_cmp" ".svg" in
  Plot.compare_placements ~left:d ~right:d ~path ();
  let ic = open_in path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "both titles present" true
    (contains ~needle:"left" content && contains ~needle:"right" content)

let suite =
  [
    Alcotest.test_case "svg shapes" `Quick test_svg_shapes;
    Alcotest.test_case "svg colors" `Quick test_svg_colors;
    Alcotest.test_case "plot placement" `Quick test_plot_placement_file;
    Alcotest.test_case "plot congestion" `Quick test_plot_with_congestion;
    Alcotest.test_case "plot compare" `Quick test_plot_compare;
  ]
